package transport

import (
	"bytes"
	"context"

	"sync"
	"testing"
	"time"

	"wedgechain/internal/wire"
)

// echoHandler counts deliveries and echoes pings.
type echoHandler struct {
	id    wire.NodeID
	mu    sync.Mutex
	seen  map[uint64]int
	pongs int
}

func newEcho(id wire.NodeID) *echoHandler {
	return &echoHandler{id: id, seen: make(map[uint64]int)}
}

func (e *echoHandler) ID() wire.NodeID { return e.id }
func (e *echoHandler) Receive(now int64, env wire.Envelope) []wire.Envelope {
	e.mu.Lock()
	defer e.mu.Unlock()
	switch m := env.Msg.(type) {
	case *wire.Ping:
		e.seen[m.Seq]++
		return []wire.Envelope{{From: e.id, To: env.From, Msg: &wire.Pong{Seq: m.Seq, Ts: m.Ts}}}
	case *wire.Pong:
		e.pongs++
	}
	return nil
}
func (e *echoHandler) Tick(now int64) []wire.Envelope { return nil }

func (e *echoHandler) counts() (dups, total, pongs int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, n := range e.seen {
		total++
		if n > 1 {
			dups++
		}
	}
	return dups, total, e.pongs
}

func TestTCPDeliversExactlyOnce(t *testing.T) {
	server := newEcho("server")
	client := newEcho("client")

	st := NewTCP(server, TCPConfig{Listen: "127.0.0.1:0"})
	if err := st.Listen(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go st.Serve(ctx)

	ct := NewTCP(client, TCPConfig{
		Listen: "127.0.0.1:0",
		Peers:  map[wire.NodeID]string{"server": st.Addr().String()},
	})
	if err := ct.Listen(); err != nil {
		t.Fatal(err)
	}
	go ct.Serve(ctx)
	// Server replies over a fresh dial back to the client.
	st.SetPeer("client", ct.Addr().String())

	const n = 200
	for i := 0; i < n; i++ {
		ct.Do(func(now int64) []wire.Envelope {
			return []wire.Envelope{{From: "client", To: "server", Msg: &wire.Ping{Seq: uint64(i), Ts: now}}}
		})
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, total, pongs := server.counts()
		_ = total
		if pongs == 0 { // server doesn't receive pongs
		}
		_, _, clientPongs := client.counts()
		if clientPongs >= n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d pongs arrived", clientPongs, n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	dups, total, _ := server.counts()
	if total != n {
		t.Fatalf("server saw %d distinct pings, want %d", total, n)
	}
	if dups != 0 {
		t.Fatalf("%d pings delivered more than once", dups)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	env := wire.Envelope{From: "a", To: "b", Msg: &wire.Ping{Seq: 7, Ts: 9}}
	if err := WriteFrame(&buf, env); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.From != "a" || got.To != "b" {
		t.Fatalf("routing lost: %+v", got)
	}
	if p, ok := got.Msg.(*wire.Ping); !ok || p.Seq != 7 {
		t.Fatalf("payload lost: %+v", got.Msg)
	}
}

func TestFrameRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestLocalTransportDelivery(t *testing.T) {
	l := NewLocal(LocalConfig{TickEvery: 5 * time.Millisecond})
	defer l.Close()
	a, b := newEcho("a"), newEcho("b")
	l.Add(a)
	l.Add(b)

	const n = 100
	for i := 0; i < n; i++ {
		l.Send([]wire.Envelope{{From: "a", To: "b", Msg: &wire.Ping{Seq: uint64(i)}}})
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, _, pongs := a.counts()
		if pongs >= n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d pongs", pongs, n)
		}
		time.Sleep(2 * time.Millisecond)
	}
	dups, total, _ := b.counts()
	if total != n || dups != 0 {
		t.Fatalf("b saw %d distinct (%d dups), want %d distinct", total, dups, n)
	}
}

func TestLocalLatencyInjection(t *testing.T) {
	l := NewLocal(LocalConfig{
		TickEvery: time.Millisecond,
		Latency: func(from, to wire.NodeID) time.Duration {
			return 50 * time.Millisecond
		},
	})
	defer l.Close()
	a, b := newEcho("a"), newEcho("b")
	l.Add(a)
	l.Add(b)

	start := time.Now()
	l.Send([]wire.Envelope{{From: "a", To: "b", Msg: &wire.Ping{Seq: 1}}})
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, _, pongs := a.counts()
		if pongs >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("pong never arrived")
		}
		time.Sleep(time.Millisecond)
	}
	if rtt := time.Since(start); rtt < 100*time.Millisecond {
		t.Fatalf("round trip %v, want >= 100ms (2x injected latency)", rtt)
	}
}

func TestLocalDoRunsOnNodeGoroutine(t *testing.T) {
	l := NewLocal(LocalConfig{TickEvery: time.Millisecond})
	defer l.Close()
	a := newEcho("a")
	l.Add(a)
	done := make(chan struct{})
	if !l.Do("a", func(now int64) []wire.Envelope {
		close(done)
		return nil
	}) {
		t.Fatal("Do refused")
	}
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Do thunk never ran")
	}
	if l.Do("missing", func(int64) []wire.Envelope { return nil }) {
		t.Fatal("Do accepted unknown node")
	}
}
