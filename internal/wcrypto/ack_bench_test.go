package wcrypto_test

// Block-ack signature cost across block sizes: the digest-signed format
// must be flat while the legacy full-body format grows with the block.
// `make bench-micro` runs these; the P2 experiment reports the same sweep
// as a table, and both use bench.AckSweepBlock so the axis has a single
// definition. (External test package: bench imports wcrypto, so the
// shared fixture can only be reached from outside the package.)

import (
	"testing"

	"wedgechain/internal/bench"
	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

func ackBenchBlock(target int) *wire.Block {
	blk := bench.AckSweepBlock(target)
	blk.Freeze()
	wcrypto.BlockDigest(&blk)
	return &blk
}

var ackSizes = []struct {
	name   string
	target int
}{{"1KB", 1 << 10}, {"20KB", 20 << 10}, {"100KB", 100 << 10}}

func BenchmarkBlockAckSignDigest(b *testing.B) {
	k := wcrypto.DeterministicKey("edge-1")
	for _, s := range ackSizes {
		blk := ackBenchBlock(s.target)
		b.Run(s.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				wcrypto.SignBlockAck(k, blk.ID, blk.CachedDigest())
			}
		})
	}
}

func BenchmarkBlockAckSignLegacy(b *testing.B) {
	k := wcrypto.DeterministicKey("edge-1")
	for _, s := range ackSizes {
		blk := ackBenchBlock(s.target)
		b.Run(s.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				wcrypto.SignLegacyBlockAck(k, blk.ID, blk)
			}
		})
	}
}

func BenchmarkBlockAckVerifyDigest(b *testing.B) {
	k := wcrypto.DeterministicKey("edge-1")
	reg := wcrypto.NewRegistry()
	reg.Register(k.ID, k.Pub)
	for _, s := range ackSizes {
		blk := ackBenchBlock(s.target)
		sig := wcrypto.SignBlockAck(k, blk.ID, blk.CachedDigest())
		digest := wcrypto.RecomputedBlockDigest(blk)
		b.Run(s.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := wcrypto.VerifyBlockAck(reg, k.ID, blk.ID, digest, sig); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
