package wcrypto

import (
	"fmt"
	"testing"

	"wedgechain/internal/wire"
)

// Micro-benchmarks for the crypto hot paths: raw sign/verify, the pooled
// signable-body encoding against the legacy allocating path, and the
// verify pool against inline verification.

func benchEntry(k KeyPair, seq uint64) wire.Entry {
	e := wire.Entry{
		Client: k.ID,
		Seq:    seq,
		Key:    []byte("k00000042"),
		Value:  make([]byte, 100),
		Ts:     int64(seq),
	}
	e.Sig = SignMsg(k, &e)
	return e
}

func BenchmarkSignEntry(b *testing.B) {
	k := DeterministicKey("c1")
	e := benchEntry(k, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SignMsg(k, &e)
	}
}

func BenchmarkVerifyEntry(b *testing.B) {
	k := DeterministicKey("c1")
	reg := NewRegistry()
	reg.Register(k.ID, k.Pub)
	e := benchEntry(k, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := VerifyMsg(reg, k.ID, &e, e.Sig); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSignableBytesLegacy measures the pre-PR allocating signable
// encoding (a fresh buffer per call); BenchmarkSignableBodyPooled the
// pooled path SignMsg/VerifyMsg now use.
func BenchmarkSignableBytesLegacy(b *testing.B) {
	k := DeterministicKey("c1")
	e := benchEntry(k, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.SignableBytes()
	}
}

func BenchmarkSignableBodyPooled(b *testing.B) {
	k := DeterministicKey("c1")
	ent := benchEntry(k, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := wire.GetEncoder()
		ent.AppendBody(e)
		wire.PutEncoder(e)
	}
}

// BenchmarkPreVerifyBatchSession verifies a session-signed 100-entry
// batch (one Ed25519 verification); BenchmarkPreVerifyBatchPerEntry the
// same batch in the pre-PR per-entry format (100 verifications).
func benchBatch(signed bool) (*Registry, wire.Envelope) {
	k := DeterministicKey("c1")
	reg := NewRegistry()
	reg.Register(k.ID, k.Pub)
	batch := &wire.PutBatch{Client: k.ID}
	for i := 0; i < 100; i++ {
		e := wire.Entry{Client: k.ID, Seq: uint64(i + 1), Key: []byte(fmt.Sprintf("k%08d", i)), Value: make([]byte, 100)}
		if !signed {
			e.Sig = SignMsg(k, &e)
		}
		batch.Entries = append(batch.Entries, e)
	}
	if signed {
		batch.BatchSig = SignMsg(k, batch)
	}
	return reg, wire.Envelope{From: k.ID, To: "edge-1", Msg: batch}
}

func BenchmarkPreVerifyBatchSession(b *testing.B) {
	reg, env := benchBatch(true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !PreVerify(reg, env) {
			b.Fatal("verify failed")
		}
	}
}

func BenchmarkPreVerifyBatchPerEntry(b *testing.B) {
	reg, env := benchBatch(false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !PreVerify(reg, env) {
			b.Fatal("verify failed")
		}
	}
}

func BenchmarkVerifyPoolThroughput(b *testing.B) {
	k := DeterministicKey("c1")
	reg := NewRegistry()
	reg.Register(k.ID, k.Pub)
	e := benchEntry(k, 1)
	env := wire.Envelope{From: k.ID, To: "edge-1", Msg: &wire.PutRequest{Entry: e}}
	done := make(chan struct{}, 1)
	n := 0
	pool := NewVerifyPool(reg, -1, 256, func(out wire.Envelope) {
		if !out.Verified {
			panic("verify failed")
		}
		if n++; n == b.N {
			done <- struct{}{}
		}
	})
	defer pool.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool.Submit(env)
	}
	<-done
}
