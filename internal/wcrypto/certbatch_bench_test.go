package wcrypto

import (
	"fmt"
	"testing"

	"wedgechain/internal/wire"
)

// Micro-benchmarks for batched certificate signatures: one Ed25519
// signature (and verification) covering a contiguous run of block
// digests, against the per-proof cost it replaces. The per-triple
// numbers are what matter — at batch 16 the amortized sign/verify cost
// drops by an order of magnitude, which is where CL1's cloud-side
// certification speedup comes from.

func benchCertBatch(entries int) (KeyPair, *Registry, *wire.BlockCertBatch) {
	k := DeterministicKey("cloud")
	reg := NewRegistry()
	reg.Register(k.ID, k.Pub)
	m := &wire.BlockCertBatch{Edge: "edge-1", Start: 1}
	for i := 0; i < entries; i++ {
		m.Digests = append(m.Digests, Digest([]byte(fmt.Sprintf("blk-%d", i))))
	}
	m.CloudSig = SignMsg(k, m)
	return k, reg, m
}

func BenchmarkCertBatchSign(b *testing.B) {
	for _, entries := range []int{1, 16, 64} {
		b.Run(fmt.Sprintf("entries-%d", entries), func(b *testing.B) {
			k, _, m := benchCertBatch(entries)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				SignMsg(k, m)
			}
		})
	}
}

func BenchmarkCertBatchVerify(b *testing.B) {
	for _, entries := range []int{1, 16, 64} {
		b.Run(fmt.Sprintf("entries-%d", entries), func(b *testing.B) {
			k, reg, m := benchCertBatch(entries)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := VerifyMsg(reg, k.ID, m, m.CloudSig); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCertBatchVerifyPerProof is the baseline the batch replaces:
// the same run of digests shipped as individual BlockProofs, each
// carrying its own signature.
func BenchmarkCertBatchVerifyPerProof(b *testing.B) {
	const entries = 16
	k := DeterministicKey("cloud")
	reg := NewRegistry()
	reg.Register(k.ID, k.Pub)
	proofs := make([]*wire.BlockProof, entries)
	for i := range proofs {
		p := &wire.BlockProof{Edge: "edge-1", BID: uint64(i + 1), Digest: Digest([]byte(fmt.Sprintf("blk-%d", i)))}
		p.CloudSig = SignMsg(k, p)
		proofs[i] = p
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range proofs {
			if err := VerifyMsg(reg, k.ID, p, p.CloudSig); err != nil {
				b.Fatal(err)
			}
		}
	}
}
