package wcrypto

import (
	"runtime"
	"sync"

	"wedgechain/internal/wire"
)

// PreVerify checks every signature a message carries that the receiving
// node would otherwise verify on its hot path, without touching any node
// state. It returns true only when all signatures check out against the
// registry; unknown kinds and failures return false, leaving the decision
// to the handler. Structural checks (sender identity matching, digest
// consistency, freshness) are NOT performed here — they stay in the
// single-threaded handlers, so a pre-verified envelope is exactly as
// trustworthy as one verified inline.
func PreVerify(r *Registry, env wire.Envelope) bool {
	switch m := env.Msg.(type) {
	case *wire.AddRequest:
		return VerifyMsg(r, m.Entry.Client, &m.Entry, m.Entry.Sig) == nil
	case *wire.PutRequest:
		return VerifyMsg(r, m.Entry.Client, &m.Entry, m.Entry.Sig) == nil
	case *wire.PutBatch:
		if len(m.BatchSig) > 0 {
			// Session-signed batch: one signature covers every entry.
			return VerifyMsg(r, m.Client, m, m.BatchSig) == nil
		}
		for i := range m.Entries {
			if VerifyMsg(r, m.Entries[i].Client, &m.Entries[i], m.Entries[i].Sig) != nil {
				return false
			}
		}
		return len(m.Entries) > 0
	case *wire.ReserveRequest:
		return VerifyMsg(r, m.Client, m, m.ClientSig) == nil
	case *wire.BlockProof:
		if env.From == m.Edge {
			// Forwarded by the edge to a client: the signer is the
			// cloud, whose identity the pool does not know — don't burn
			// a guaranteed-failing verification; the client checks the
			// cloud signature inline.
			return false
		}
		return VerifyMsg(r, env.From, m, m.CloudSig) == nil
	case *wire.BlockCertBatch:
		if env.From == m.Edge {
			// Same edge-forwarding caveat as BlockProof: the signer is
			// the cloud, not the forwarding edge.
			return false
		}
		return VerifyMsg(r, env.From, m, m.CloudSig) == nil
	case *wire.MergeResponse:
		return VerifyMsg(r, env.From, m, m.CloudSig) == nil
	// Edge-to-cloud requests: signed by the sending node's key. The Edge
	// field names the chain, which under a replica group differs from the
	// node — the cloud's handler enforces that the sender currently leads
	// that chain.
	case *wire.BlockCertify:
		return VerifyMsg(r, env.From, m, m.EdgeSig) == nil
	case *wire.BlockCertifyBatch:
		return VerifyMsg(r, env.From, m, m.EdgeSig) == nil
	case *wire.MergeRequest:
		return VerifyMsg(r, env.From, m, m.EdgeSig) == nil
	case *wire.ReplicateBlock:
		return VerifyMsg(r, m.Leader, m, m.LeaderSig) == nil
	case *wire.ReplicaHeartbeat:
		return VerifyMsg(r, m.Node, m, m.Sig) == nil
	case *wire.LeadershipTransfer:
		// Signed by the cloud; when forwarded by a non-cloud sender the
		// receiver re-verifies inline against its configured cloud.
		return VerifyMsg(r, env.From, m, m.CloudSig) == nil
	case *wire.CatchUpRequest:
		return VerifyMsg(r, m.Node, m, m.Sig) == nil
	case *wire.GroupJoin:
		// Signed by the cloud, sent by the cloud; the edge additionally
		// requires the sender to be its configured cloud.
		return VerifyMsg(r, env.From, m, m.CloudSig) == nil
	// Client-bound responses: the edge's signature is checked against the
	// envelope sender; the client core additionally requires the sender
	// to be its bound edge before trusting the flag.
	case *wire.AddResponse:
		return VerifyMsg(r, env.From, m, m.EdgeSig) == nil
	case *wire.PutResponse:
		return VerifyMsg(r, env.From, m, m.EdgeSig) == nil
	case *wire.ReadResponse:
		return VerifyMsg(r, env.From, m, m.EdgeSig) == nil
	case *wire.GetResponse:
		return VerifyMsg(r, env.From, m, m.EdgeSig) == nil
	case *wire.ScanResponse:
		return VerifyMsg(r, env.From, m, m.EdgeSig) == nil
	default:
		return false
	}
}

// verifyJob is one envelope travelling through the pool: workers verify it
// out of order, the dispatcher releases it in submission order.
type verifyJob struct {
	env  wire.Envelope
	ok   bool
	done chan struct{}
}

// VerifyPool verifies message signatures on a pool of worker goroutines
// while delivering envelopes to its sink in exact submission order — so a
// deterministic, single-threaded state machine behind it observes the same
// message sequence it would without the pool, minus the per-message
// signature cost. Per-sender order is a corollary of global order.
//
// Verification failure does not drop the envelope: it is delivered with
// Verified=false and the handler re-verifies and rejects exactly as the
// serial path would, so the pool can never change protocol behaviour.
//
// Submit never blocks: the queue is unbounded, so a node goroutine that
// both feeds and is fed by the pool (every node on an in-process
// transport) can never deadlock against the dispatcher. Overload
// manifests as queue memory, bounded in practice by the transports'
// bounded inboxes and sockets upstream.
//
// With Workers <= 0 the pool degenerates to a synchronous inline stage
// (verify on the submitting goroutine, deliver immediately): the mode the
// discrete-event simulator and tests use to stay deterministic and
// single-threaded while sharing the same code path.
type VerifyPool struct {
	reg     *Registry
	sink    func(wire.Envelope)
	workers int

	mu      sync.Mutex
	cond    *sync.Cond // wakes workers and the dispatcher on submit/stop
	queue   []*verifyJob
	head    int // next job the dispatcher releases
	next    int // next job a worker picks up (may lag or lead head)
	stopped bool

	closed chan struct{} // dispatcher exited (queue fully drained)
}

// NewVerifyPool builds a verification stage in front of sink. workers is
// the parallelism (0 = synchronous inline mode, negative = GOMAXPROCS).
// queue is a sizing hint for the initial queue capacity; submission is
// never blocked by it.
func NewVerifyPool(reg *Registry, workers, queue int, sink func(wire.Envelope)) *VerifyPool {
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &VerifyPool{reg: reg, sink: sink, workers: workers}
	if workers == 0 {
		return p
	}
	if queue > 0 {
		p.queue = make([]*verifyJob, 0, queue)
	}
	p.cond = sync.NewCond(&p.mu)
	p.closed = make(chan struct{})
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	go p.dispatch()
	return p
}

func (p *VerifyPool) worker() {
	p.mu.Lock()
	for {
		for p.next >= len(p.queue) && !p.stopped {
			p.cond.Wait()
		}
		if p.next >= len(p.queue) {
			p.mu.Unlock()
			return // stopped and nothing left to verify
		}
		j := p.queue[p.next]
		p.next++
		p.mu.Unlock()
		j.ok = PreVerify(p.reg, j.env)
		close(j.done)
		p.mu.Lock()
	}
}

// dispatch releases verified envelopes strictly in submission order.
func (p *VerifyPool) dispatch() {
	p.mu.Lock()
	for {
		for p.head >= len(p.queue) && !p.stopped {
			p.cond.Wait()
		}
		if p.head >= len(p.queue) {
			break // stopped and fully drained
		}
		j := p.queue[p.head]
		p.head++
		p.compactLocked()
		p.mu.Unlock()
		<-j.done
		j.env.Verified = j.ok
		p.sink(j.env)
		p.mu.Lock()
	}
	p.mu.Unlock()
	close(p.closed)
}

// compactLocked bounds queue memory: once the prefix consumed by BOTH the
// dispatcher and the workers dominates, shift the live tail to the front.
// The dispatcher can briefly run ahead of the workers (it blocks on the
// job's done channel), so the dead prefix is min(head, next).
func (p *VerifyPool) compactLocked() {
	base := p.head
	if p.next < base {
		base = p.next
	}
	if base < 1024 || base*2 < len(p.queue) {
		return
	}
	n := copy(p.queue, p.queue[base:])
	for i := n; i < len(p.queue); i++ {
		p.queue[i] = nil
	}
	p.queue = p.queue[:n]
	p.head -= base
	p.next -= base
}

// Submit enqueues one envelope for verification and ordered delivery. It
// never blocks; safe for concurrent use. Concurrent submitters race for
// positions in the global order, but each submitter's own envelopes keep
// their relative order. Envelopes submitted after Close are silently
// dropped — the transport is shutting down and undelivered messages are
// the network's prerogative.
func (p *VerifyPool) Submit(env wire.Envelope) {
	if p.workers == 0 {
		env.Verified = PreVerify(p.reg, env)
		p.sink(env)
		return
	}
	j := &verifyJob{env: env, done: make(chan struct{})}
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		return
	}
	p.queue = append(p.queue, j)
	p.mu.Unlock()
	p.cond.Broadcast()
}

// Close drains in-flight envelopes (delivering every submitted one) and
// stops the workers and dispatcher. Idempotent.
func (p *VerifyPool) Close() {
	if p.workers == 0 {
		return
	}
	p.mu.Lock()
	p.stopped = true
	p.mu.Unlock()
	p.cond.Broadcast()
	<-p.closed
}
