package wcrypto

import (
	"fmt"
	"testing"

	"wedgechain/internal/wire"
)

func poolFixture(t *testing.T, clients int) (*Registry, map[wire.NodeID]KeyPair) {
	t.Helper()
	reg := NewRegistry()
	keys := map[wire.NodeID]KeyPair{}
	for i := 0; i < clients; i++ {
		id := wire.NodeID(fmt.Sprintf("c%d", i+1))
		k := DeterministicKey(id)
		keys[id] = k
		reg.Register(id, k.Pub)
	}
	return reg, keys
}

func signedPut(k KeyPair, seq uint64) wire.Envelope {
	e := wire.Entry{Client: k.ID, Seq: seq, Key: []byte("k"), Value: []byte("v")}
	e.Sig = SignMsg(k, &e)
	return wire.Envelope{From: k.ID, To: "edge-1", Msg: &wire.PutRequest{Entry: e}}
}

// TestVerifyPoolPreservesSubmissionOrder drives many interleaved clients
// through a concurrent pool and asserts delivery in exact submission
// order (which implies per-client order), with every envelope verified.
// Run under -race this also exercises the worker/dispatcher concurrency.
func TestVerifyPoolPreservesSubmissionOrder(t *testing.T) {
	const clients, perClient = 7, 40
	reg, keys := poolFixture(t, clients)

	var got []wire.Envelope
	pool := NewVerifyPool(reg, 4, 8, func(env wire.Envelope) {
		got = append(got, env)
	})

	var want []wire.Envelope
	for seq := uint64(1); seq <= perClient; seq++ {
		for i := 0; i < clients; i++ {
			env := signedPut(keys[wire.NodeID(fmt.Sprintf("c%d", i+1))], seq)
			want = append(want, env)
			pool.Submit(env)
		}
	}
	pool.Close()

	if len(got) != len(want) {
		t.Fatalf("delivered %d envelopes, submitted %d", len(got), len(want))
	}
	for i := range got {
		if !got[i].Verified {
			t.Fatalf("envelope %d not marked verified", i)
		}
		wantE := want[i].Msg.(*wire.PutRequest).Entry
		gotE := got[i].Msg.(*wire.PutRequest).Entry
		if gotE.Client != wantE.Client || gotE.Seq != wantE.Seq {
			t.Fatalf("order violated at %d: got %s/%d want %s/%d",
				i, gotE.Client, gotE.Seq, wantE.Client, wantE.Seq)
		}
	}
}

// TestVerifyPoolBadSignatureDeliveredUnverified checks the pool's failure
// contract: a bad signature is not dropped, it is delivered with
// Verified=false so the handler rejects it exactly as the serial path
// would.
func TestVerifyPoolBadSignatureDeliveredUnverified(t *testing.T) {
	reg, keys := poolFixture(t, 1)
	good := signedPut(keys["c1"], 1)
	bad := signedPut(keys["c1"], 2)
	bad.Msg.(*wire.PutRequest).Entry.Sig[0] ^= 1

	var got []wire.Envelope
	pool := NewVerifyPool(reg, 2, 4, func(env wire.Envelope) { got = append(got, env) })
	pool.Submit(good)
	pool.Submit(bad)
	pool.Close()

	if len(got) != 2 {
		t.Fatalf("delivered %d envelopes, want 2", len(got))
	}
	if !got[0].Verified {
		t.Fatal("good signature not verified")
	}
	if got[1].Verified {
		t.Fatal("bad signature marked verified")
	}
}

// TestVerifyPoolSynchronousMode checks the workers=0 degenerate mode used
// by deterministic single-threaded harnesses: Submit verifies inline and
// delivers before returning.
func TestVerifyPoolSynchronousMode(t *testing.T) {
	reg, keys := poolFixture(t, 1)
	delivered := false
	pool := NewVerifyPool(reg, 0, 0, func(env wire.Envelope) {
		delivered = true
		if !env.Verified {
			t.Fatal("inline verification failed")
		}
	})
	pool.Submit(signedPut(keys["c1"], 1))
	if !delivered {
		t.Fatal("synchronous mode did not deliver inline")
	}
	pool.Close() // no-op, must not hang
}

// TestVerifyPoolSessionBatch checks PreVerify's two batch modes: a
// session signature authenticates the whole batch in one check, and
// tampering with any entry breaks it.
func TestVerifyPoolSessionBatch(t *testing.T) {
	reg, keys := poolFixture(t, 1)
	k := keys["c1"]
	batch := &wire.PutBatch{Client: k.ID}
	for seq := uint64(1); seq <= 10; seq++ {
		batch.Entries = append(batch.Entries, wire.Entry{Client: k.ID, Seq: seq, Key: []byte("k"), Value: []byte("v")})
	}
	batch.BatchSig = SignMsg(k, batch)
	env := wire.Envelope{From: k.ID, To: "edge-1", Msg: batch}
	if !PreVerify(reg, env) {
		t.Fatal("session-signed batch rejected")
	}
	tampered := *batch
	tampered.Entries = append([]wire.Entry(nil), batch.Entries...)
	tampered.Entries[3].Value = []byte("evil")
	if PreVerify(reg, wire.Envelope{From: k.ID, To: "edge-1", Msg: &tampered}) {
		t.Fatal("tampered session batch verified")
	}
}
