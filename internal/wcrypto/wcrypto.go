// Package wcrypto is WedgeChain's cryptographic substrate: Ed25519
// identities and signatures, SHA-256 digests, and the key registry that
// binds node identities to public keys.
//
// Identities being known and bound to keys is the premise of lazy
// certification (Section II-D of the paper): a malicious edge cannot deny
// its signed statements, cannot forge others', and cannot re-enter under a
// fresh identity after punishment.
package wcrypto

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"fmt"
	"sort"
	"sync"

	"wedgechain/internal/wire"
)

// DigestSize is the size in bytes of a block/page digest.
const DigestSize = sha256.Size

// Digest returns the SHA-256 digest of b. Block digests, page hashes and
// Merkle nodes all use this one-way function; agreement on a digest
// therefore implies agreement on the data (data-free certification).
func Digest(b []byte) []byte {
	h := sha256.Sum256(b)
	return h[:]
}

// KeyPair is a node's Ed25519 identity.
type KeyPair struct {
	ID   wire.NodeID
	Pub  ed25519.PublicKey
	Priv ed25519.PrivateKey
}

// GenerateKey creates a fresh random identity for id.
func GenerateKey(id wire.NodeID) (KeyPair, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return KeyPair{}, fmt.Errorf("wcrypto: generating key for %s: %w", id, err)
	}
	return KeyPair{ID: id, Pub: pub, Priv: priv}, nil
}

// DeterministicKey derives a key pair from id alone. Used by the simulator
// and tests for reproducible runs; real deployments use GenerateKey.
func DeterministicKey(id wire.NodeID) KeyPair {
	seed := sha256.Sum256([]byte("wedgechain-key-seed:" + string(id)))
	priv := ed25519.NewKeyFromSeed(seed[:])
	return KeyPair{ID: id, Pub: priv.Public().(ed25519.PublicKey), Priv: priv}
}

// Sign signs msg with the pair's private key.
func (k KeyPair) Sign(msg []byte) []byte {
	return ed25519.Sign(k.Priv, msg)
}

// Registry maps node identities to public keys. It is safe for concurrent
// use. Every node holds (a copy of) the registry; in the paper's model the
// application owner distributes it out of band.
type Registry struct {
	mu   sync.RWMutex
	keys map[wire.NodeID]ed25519.PublicKey
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{keys: make(map[wire.NodeID]ed25519.PublicKey)}
}

// Register binds id to pub, replacing any previous binding.
func (r *Registry) Register(id wire.NodeID, pub ed25519.PublicKey) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.keys[id] = pub
}

// Lookup returns the public key bound to id.
func (r *Registry) Lookup(id wire.NodeID) (ed25519.PublicKey, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	pub, ok := r.keys[id]
	return pub, ok
}

// Known reports whether id has a registered key — i.e. whether it is an
// authenticated participant.
func (r *Registry) Known(id wire.NodeID) bool {
	_, ok := r.Lookup(id)
	return ok
}

// IDs returns all registered identities in sorted order.
func (r *Registry) IDs() []wire.NodeID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]wire.NodeID, 0, len(r.keys))
	for id := range r.keys {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Verify checks sig over msg against id's registered key.
func (r *Registry) Verify(id wire.NodeID, msg, sig []byte) error {
	pub, ok := r.Lookup(id)
	if !ok {
		return fmt.Errorf("wcrypto: unknown identity %q", id)
	}
	if len(sig) != ed25519.SignatureSize || !ed25519.Verify(pub, msg, sig) {
		return fmt.Errorf("wcrypto: bad signature from %q", id)
	}
	return nil
}

// Signable is any message type carrying a signature over its canonical
// body encoding.
type Signable interface {
	SignableBytes() []byte
}

// signableBody writes m's signable body into a pooled encoder when the
// message supports appending (every wire message does), falling back to
// the allocating SignableBytes path otherwise. The caller must
// wire.PutEncoder the returned encoder; it is nil on the fallback path.
func signableBody(m Signable) (*wire.Encoder, []byte) {
	if a, ok := m.(wire.BodyAppender); ok {
		e := wire.GetEncoder()
		a.AppendBody(e)
		return e, e.Bytes()
	}
	return nil, m.SignableBytes()
}

// SignMsg returns the signature for a signable message body.
func SignMsg(k KeyPair, m Signable) []byte {
	e, body := signableBody(m)
	sig := k.Sign(body)
	wire.PutEncoder(e)
	return sig
}

// VerifyMsg checks a signable message's signature against signer's
// registered key.
func VerifyMsg(r *Registry, signer wire.NodeID, m Signable, sig []byte) error {
	e, body := signableBody(m)
	err := r.Verify(signer, body, sig)
	wire.PutEncoder(e)
	return err
}

// BlockDigest returns the block's digest — the hash of its digest
// preimage, which commits the header fields, the key summary derived from
// the entries, and the hash of the encoded entries (wire.Block.BodyDigest)
// — cached on the block so digesting, persisting and certifying a freshly
// cut block derive it exactly once. Use it only on blocks the caller owns
// (its own log, decoded wire input); when judging a block that arrived by
// reference from another node, use RecomputedBlockDigest.
func BlockDigest(b *wire.Block) []byte {
	if d := b.CachedDigest(); d != nil {
		return d
	}
	d := b.BodyDigest()
	b.SetCachedDigest(d)
	return d
}

// RecomputedBlockDigest recomputes a block's digest from its fields,
// ignoring any cached bytes. Adjudication and verification paths use it
// because in-process transports move blocks by reference and a cache
// populated by the accused node proves nothing. (The hash itself lives on
// wire.Block so signable bodies can embed it; this wrapper keeps the one
// digest entry point callers already use.)
func RecomputedBlockDigest(b *wire.Block) []byte {
	return b.BodyDigest()
}

// SignBlockAck signs the size-independent block acknowledgement body
// (BID + digest) for a block whose digest the caller already holds — the
// edge's hot path, where the digest was cached at block cut. The resulting
// signature verifies through the generic VerifyMsg path on AddResponse and
// PutResponse, whose signable bodies recompute the digest from the block
// they carry.
func SignBlockAck(k KeyPair, bid uint64, digest []byte) []byte {
	e := wire.GetEncoder()
	wire.AppendBlockAckBody(e, bid, digest)
	sig := k.Sign(e.Bytes())
	wire.PutEncoder(e)
	return sig
}

// VerifyBlockAck checks a block-ack signature against signer's registered
// key given the block digest the caller computed from the received block.
// Clients use it to fold the digest they need anyway (for the Phase II
// certification match) into the signature check, instead of hashing the
// block a second time inside VerifyMsg.
func VerifyBlockAck(r *Registry, signer wire.NodeID, bid uint64, digest, sig []byte) error {
	e := wire.GetEncoder()
	wire.AppendBlockAckBody(e, bid, digest)
	err := r.Verify(signer, e.Bytes(), sig)
	wire.PutEncoder(e)
	return err
}

// SignReadResponse signs a read response whose block digest the caller
// already holds (the edge's cut-time cache), skipping the per-read block
// re-hash the generic SignMsg path would pay. Only for responses whose
// Block actually hashes to digest — the honest serve path; tampering
// faults must sign through SignMsg so the signature matches what ships.
func SignReadResponse(k KeyPair, m *wire.ReadResponse, digest []byte) []byte {
	e := wire.GetEncoder()
	m.AppendBodyWithDigest(e, digest)
	sig := k.Sign(e.Bytes())
	wire.PutEncoder(e)
	return sig
}

// SignGetResponse signs a get response using L0 block digests the caller
// already holds (the edge's cut-time caches), skipping the per-block
// re-hash the generic SignMsg path would pay — the read-path mirror of
// SignBlockAck. Only for responses whose L0 blocks actually hash to the
// given digests — the honest serve path; tampering faults must sign
// through SignMsg so the signature matches what ships.
func SignGetResponse(k KeyPair, m *wire.GetResponse, l0Digests [][]byte) []byte {
	e := wire.GetEncoder()
	m.AppendBodyWithDigests(e, l0Digests)
	sig := k.Sign(e.Bytes())
	wire.PutEncoder(e)
	return sig
}

// SignScanResponse is SignGetResponse's scan counterpart: one signature
// over the scan proof with every L0 block stood in by its cached digest.
func SignScanResponse(k KeyPair, m *wire.ScanResponse, l0Digests [][]byte) []byte {
	e := wire.GetEncoder()
	m.AppendBodyWithDigests(e, l0Digests)
	sig := k.Sign(e.Bytes())
	wire.PutEncoder(e)
	return sig
}

// SignLegacyBlockAck reproduces the pre-digest wire format — a signature
// over BID plus the block's full re-encoded body — so the serial-crypto
// A/B baseline and the block-size sweep can measure what the old scheme
// cost. Production paths never call it.
func SignLegacyBlockAck(k KeyPair, bid uint64, b *wire.Block) []byte {
	e := wire.GetEncoder()
	e.U64(bid)
	b.EncodeTo(e)
	sig := k.Sign(e.Bytes())
	wire.PutEncoder(e)
	return sig
}

// PageHash returns the digest of a page's canonical encoding.
func PageHash(p *wire.Page) []byte { return Digest(p.Canonical()) }
