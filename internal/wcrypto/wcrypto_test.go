package wcrypto

import (
	"bytes"
	"testing"
	"testing/quick"

	"wedgechain/internal/wire"
)

func TestSignVerify(t *testing.T) {
	k := DeterministicKey("edge-1")
	reg := NewRegistry()
	reg.Register(k.ID, k.Pub)

	msg := []byte("block digest payload")
	sig := k.Sign(msg)
	if err := reg.Verify("edge-1", msg, sig); err != nil {
		t.Fatalf("valid signature rejected: %v", err)
	}
}

func TestVerifyRejectsTamperedMessage(t *testing.T) {
	k := DeterministicKey("edge-1")
	reg := NewRegistry()
	reg.Register(k.ID, k.Pub)

	msg := []byte("original")
	sig := k.Sign(msg)
	if err := reg.Verify("edge-1", []byte("tampered"), sig); err == nil {
		t.Fatal("tampered message accepted")
	}
}

func TestVerifyRejectsWrongSigner(t *testing.T) {
	edge := DeterministicKey("edge-1")
	evil := DeterministicKey("edge-evil")
	reg := NewRegistry()
	reg.Register(edge.ID, edge.Pub)
	reg.Register(evil.ID, evil.Pub)

	msg := []byte("payload")
	sig := evil.Sign(msg)
	if err := reg.Verify("edge-1", msg, sig); err == nil {
		t.Fatal("forged identity accepted")
	}
}

func TestVerifyRejectsUnknownIdentity(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Verify("ghost", []byte("x"), make([]byte, 64)); err == nil {
		t.Fatal("unknown identity accepted")
	}
}

func TestVerifyRejectsMalformedSignature(t *testing.T) {
	k := DeterministicKey("edge-1")
	reg := NewRegistry()
	reg.Register(k.ID, k.Pub)
	for _, n := range []int{0, 1, 63, 65} {
		if err := reg.Verify("edge-1", []byte("x"), make([]byte, n)); err == nil {
			t.Fatalf("signature of length %d accepted", n)
		}
	}
}

func TestDeterministicKeyIsStable(t *testing.T) {
	a := DeterministicKey("node")
	b := DeterministicKey("node")
	if !bytes.Equal(a.Priv, b.Priv) {
		t.Fatal("DeterministicKey not deterministic")
	}
	c := DeterministicKey("other")
	if bytes.Equal(a.Priv, c.Priv) {
		t.Fatal("distinct ids produced the same key")
	}
}

func TestGenerateKeyDistinct(t *testing.T) {
	a, err := GenerateKey("n1")
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateKey("n1")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Priv, b.Priv) {
		t.Fatal("GenerateKey returned identical keys")
	}
}

func TestDigestProperties(t *testing.T) {
	// Deterministic, fixed size, sensitive to single-bit changes.
	f := func(b []byte) bool {
		d1 := Digest(b)
		d2 := Digest(b)
		if !bytes.Equal(d1, d2) || len(d1) != DigestSize {
			return false
		}
		if len(b) > 0 {
			mut := append([]byte{}, b...)
			mut[0] ^= 1
			if bytes.Equal(Digest(mut), d1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSignVerifyMsgHelpers(t *testing.T) {
	k := DeterministicKey("cloud")
	reg := NewRegistry()
	reg.Register(k.ID, k.Pub)

	bp := &wire.BlockProof{Edge: "edge-1", BID: 9, Digest: Digest([]byte("b"))}
	bp.CloudSig = SignMsg(k, bp)
	if err := VerifyMsg(reg, "cloud", bp, bp.CloudSig); err != nil {
		t.Fatalf("VerifyMsg: %v", err)
	}
	bp.BID = 10 // tamper with a signed field
	if err := VerifyMsg(reg, "cloud", bp, bp.CloudSig); err == nil {
		t.Fatal("tampered BlockProof accepted")
	}
}

func TestBlockDigestBindsContent(t *testing.T) {
	b1 := &wire.Block{Edge: "e", ID: 1, Entries: []wire.Entry{{Client: "c", Value: []byte("v1")}}}
	b2 := &wire.Block{Edge: "e", ID: 1, Entries: []wire.Entry{{Client: "c", Value: []byte("v2")}}}
	if bytes.Equal(BlockDigest(b1), BlockDigest(b2)) {
		t.Fatal("blocks with different contents share a digest")
	}
	b3 := &wire.Block{Edge: "e", ID: 2, Entries: b1.Entries}
	if bytes.Equal(BlockDigest(b1), BlockDigest(b3)) {
		t.Fatal("blocks with different ids share a digest")
	}
}

func TestRegistryIDsSorted(t *testing.T) {
	reg := NewRegistry()
	for _, id := range []wire.NodeID{"zeta", "alpha", "mid"} {
		k := DeterministicKey(id)
		reg.Register(id, k.Pub)
	}
	ids := reg.IDs()
	want := []wire.NodeID{"alpha", "mid", "zeta"}
	if len(ids) != len(want) {
		t.Fatalf("IDs() = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs() = %v, want %v", ids, want)
		}
	}
}

// ackBlock builds a frozen block with a cached digest, as the edge's log
// produces at block cut.
func ackBlock(entries int) *wire.Block {
	b := &wire.Block{Edge: "edge-1", ID: 9, StartPos: 900, Ts: 5}
	for i := 0; i < entries; i++ {
		b.Entries = append(b.Entries, wire.Entry{
			Client: "c1", Seq: uint64(i + 1),
			Key: []byte("k"), Value: make([]byte, 100), Ts: int64(i),
		})
	}
	b.Freeze()
	BlockDigest(b)
	return b
}

// TestSignBlockAckMatchesGenericVerify pins the digest-signing contract:
// the edge signs with the cached digest (SignBlockAck) and the signature
// verifies through every path a receiver uses — the generic VerifyMsg on
// AddResponse and PutResponse (which recompute the digest from the block)
// and the digest-in-hand VerifyBlockAck.
func TestSignBlockAckMatchesGenericVerify(t *testing.T) {
	k := DeterministicKey("edge-1")
	reg := NewRegistry()
	reg.Register(k.ID, k.Pub)
	blk := ackBlock(3)

	sig := SignBlockAck(k, blk.ID, blk.CachedDigest())
	add := &wire.AddResponse{BID: blk.ID, Block: *blk, EdgeSig: sig}
	if err := VerifyMsg(reg, k.ID, add, add.EdgeSig); err != nil {
		t.Fatalf("AddResponse rejects digest-signed ack: %v", err)
	}
	put := &wire.PutResponse{BID: blk.ID, Block: *blk, EdgeSig: sig}
	if err := VerifyMsg(reg, k.ID, put, put.EdgeSig); err != nil {
		t.Fatalf("PutResponse rejects digest-signed ack: %v", err)
	}
	if err := VerifyBlockAck(reg, k.ID, blk.ID, RecomputedBlockDigest(blk), sig); err != nil {
		t.Fatalf("VerifyBlockAck rejects digest-signed ack: %v", err)
	}
	// The signature must bind the block id.
	if err := VerifyBlockAck(reg, k.ID, blk.ID+1, RecomputedBlockDigest(blk), sig); err == nil {
		t.Fatal("ack signature accepted for wrong block id")
	}
}

// TestAckSignatureBindsBlockBody is the adversarial-parity core of digest
// signing: a block whose frozen cache still holds the honest digest but
// whose fields were tampered (cache poisoning — possible only for blocks
// moved by reference in-process) must fail verification everywhere,
// because every verify path recomputes the digest from the fields.
func TestAckSignatureBindsBlockBody(t *testing.T) {
	k := DeterministicKey("edge-1")
	reg := NewRegistry()
	reg.Register(k.ID, k.Pub)
	blk := ackBlock(3)
	sig := SignBlockAck(k, blk.ID, blk.CachedDigest())

	poisoned := *blk // shares the honest cache
	poisoned.Entries = append([]wire.Entry(nil), blk.Entries...)
	poisoned.Entries[1].Value = []byte("evil")
	if bytes.Equal(RecomputedBlockDigest(&poisoned), poisoned.CachedDigest()) {
		t.Fatal("test setup: cache not poisoned")
	}

	add := &wire.AddResponse{BID: blk.ID, Block: poisoned, EdgeSig: sig}
	if err := VerifyMsg(reg, k.ID, add, add.EdgeSig); err == nil {
		t.Fatal("AddResponse with poisoned cache verified")
	}
	put := &wire.PutResponse{BID: blk.ID, Block: poisoned, EdgeSig: sig}
	if err := VerifyMsg(reg, k.ID, put, put.EdgeSig); err == nil {
		t.Fatal("PutResponse with poisoned cache verified")
	}
	read := &wire.ReadResponse{ReqID: 1, BID: blk.ID, OK: true, Block: poisoned}
	read.EdgeSig = SignMsg(k, &wire.ReadResponse{ReqID: 1, BID: blk.ID, OK: true, Block: *blk})
	if err := VerifyMsg(reg, k.ID, read, read.EdgeSig); err == nil {
		t.Fatal("ReadResponse with poisoned cache verified")
	}
}
