package wcrypto

import (
	"bytes"
	"testing"
	"testing/quick"

	"wedgechain/internal/wire"
)

func TestSignVerify(t *testing.T) {
	k := DeterministicKey("edge-1")
	reg := NewRegistry()
	reg.Register(k.ID, k.Pub)

	msg := []byte("block digest payload")
	sig := k.Sign(msg)
	if err := reg.Verify("edge-1", msg, sig); err != nil {
		t.Fatalf("valid signature rejected: %v", err)
	}
}

func TestVerifyRejectsTamperedMessage(t *testing.T) {
	k := DeterministicKey("edge-1")
	reg := NewRegistry()
	reg.Register(k.ID, k.Pub)

	msg := []byte("original")
	sig := k.Sign(msg)
	if err := reg.Verify("edge-1", []byte("tampered"), sig); err == nil {
		t.Fatal("tampered message accepted")
	}
}

func TestVerifyRejectsWrongSigner(t *testing.T) {
	edge := DeterministicKey("edge-1")
	evil := DeterministicKey("edge-evil")
	reg := NewRegistry()
	reg.Register(edge.ID, edge.Pub)
	reg.Register(evil.ID, evil.Pub)

	msg := []byte("payload")
	sig := evil.Sign(msg)
	if err := reg.Verify("edge-1", msg, sig); err == nil {
		t.Fatal("forged identity accepted")
	}
}

func TestVerifyRejectsUnknownIdentity(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Verify("ghost", []byte("x"), make([]byte, 64)); err == nil {
		t.Fatal("unknown identity accepted")
	}
}

func TestVerifyRejectsMalformedSignature(t *testing.T) {
	k := DeterministicKey("edge-1")
	reg := NewRegistry()
	reg.Register(k.ID, k.Pub)
	for _, n := range []int{0, 1, 63, 65} {
		if err := reg.Verify("edge-1", []byte("x"), make([]byte, n)); err == nil {
			t.Fatalf("signature of length %d accepted", n)
		}
	}
}

func TestDeterministicKeyIsStable(t *testing.T) {
	a := DeterministicKey("node")
	b := DeterministicKey("node")
	if !bytes.Equal(a.Priv, b.Priv) {
		t.Fatal("DeterministicKey not deterministic")
	}
	c := DeterministicKey("other")
	if bytes.Equal(a.Priv, c.Priv) {
		t.Fatal("distinct ids produced the same key")
	}
}

func TestGenerateKeyDistinct(t *testing.T) {
	a, err := GenerateKey("n1")
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateKey("n1")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Priv, b.Priv) {
		t.Fatal("GenerateKey returned identical keys")
	}
}

func TestDigestProperties(t *testing.T) {
	// Deterministic, fixed size, sensitive to single-bit changes.
	f := func(b []byte) bool {
		d1 := Digest(b)
		d2 := Digest(b)
		if !bytes.Equal(d1, d2) || len(d1) != DigestSize {
			return false
		}
		if len(b) > 0 {
			mut := append([]byte{}, b...)
			mut[0] ^= 1
			if bytes.Equal(Digest(mut), d1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSignVerifyMsgHelpers(t *testing.T) {
	k := DeterministicKey("cloud")
	reg := NewRegistry()
	reg.Register(k.ID, k.Pub)

	bp := &wire.BlockProof{Edge: "edge-1", BID: 9, Digest: Digest([]byte("b"))}
	bp.CloudSig = SignMsg(k, bp)
	if err := VerifyMsg(reg, "cloud", bp, bp.CloudSig); err != nil {
		t.Fatalf("VerifyMsg: %v", err)
	}
	bp.BID = 10 // tamper with a signed field
	if err := VerifyMsg(reg, "cloud", bp, bp.CloudSig); err == nil {
		t.Fatal("tampered BlockProof accepted")
	}
}

func TestBlockDigestBindsContent(t *testing.T) {
	b1 := &wire.Block{Edge: "e", ID: 1, Entries: []wire.Entry{{Client: "c", Value: []byte("v1")}}}
	b2 := &wire.Block{Edge: "e", ID: 1, Entries: []wire.Entry{{Client: "c", Value: []byte("v2")}}}
	if bytes.Equal(BlockDigest(b1), BlockDigest(b2)) {
		t.Fatal("blocks with different contents share a digest")
	}
	b3 := &wire.Block{Edge: "e", ID: 2, Entries: b1.Entries}
	if bytes.Equal(BlockDigest(b1), BlockDigest(b3)) {
		t.Fatal("blocks with different ids share a digest")
	}
}

func TestRegistryIDsSorted(t *testing.T) {
	reg := NewRegistry()
	for _, id := range []wire.NodeID{"zeta", "alpha", "mid"} {
		k := DeterministicKey(id)
		reg.Register(id, k.Pub)
	}
	ids := reg.IDs()
	want := []wire.NodeID{"alpha", "mid", "zeta"}
	if len(ids) != len(want) {
		t.Fatalf("IDs() = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs() = %v, want %v", ids, want)
		}
	}
}
