package wire

import "testing"

// Micro-benchmarks for the wire layer's hot paths. The legacy variants
// reproduce the pre-pipeline implementations so the allocation wins are
// visible in one `make bench-micro` run.

func benchEnvelope() Envelope {
	return Envelope{From: "c1", To: "edge-1", Msg: &AddResponse{BID: 12, Block: sampleBlock(), EdgeSig: randBytes(64)}}
}

func BenchmarkEncodeEnvelope(b *testing.B) {
	env := benchEnvelope()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EncodeEnvelope(env)
	}
}

func BenchmarkAppendEnvelopePooled(b *testing.B) {
	env := benchEnvelope()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := GetEncoder()
		AppendEnvelope(e, env)
		PutEncoder(e)
	}
}

func BenchmarkDecodeEnvelope(b *testing.B) {
	buf := EncodeEnvelope(benchEnvelope())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeEnvelope(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeEnvelopeOwned(b *testing.B) {
	buf := EncodeEnvelope(benchEnvelope())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeEnvelopeOwned(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnvelopeSizeLegacy is the pre-PR Size implementation: encode
// the whole envelope and take len().
func BenchmarkEnvelopeSizeLegacy(b *testing.B) {
	env := benchEnvelope()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = len(EncodeEnvelope(env))
	}
}

func BenchmarkEnvelopeEncodedSize(b *testing.B) {
	env := benchEnvelope()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = EncodedSize(env)
	}
}

func BenchmarkBlockCanonicalUnfrozen(b *testing.B) {
	blk := sampleBlock()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = blk.Canonical()
	}
}

func BenchmarkBlockCanonicalFrozen(b *testing.B) {
	blk := sampleBlock()
	blk.Freeze()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = blk.Canonical()
	}
}
