// Package wire defines WedgeChain's canonical binary wire format and the
// complete protocol message set exchanged among clients, edge nodes and the
// cloud node.
//
// All encoding is deterministic ("canonical"): encoding a decoded message
// reproduces the input bytes exactly. Signatures throughout the system are
// computed over these canonical encodings, so determinism is a correctness
// requirement, not an optimization.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// maxLen bounds any length-prefixed field to guard against corrupt or
// hostile inputs allocating unbounded memory during decode.
const maxLen = 1 << 30

// ErrTruncated reports that a decoder ran out of input mid-message.
var ErrTruncated = errors.New("wire: truncated input")

// Encoder accumulates the canonical encoding of a message. The zero value is
// ready to use.
//
// A counting encoder (see EncodedSize in wire.go) walks the same EncodeTo
// code paths but only sums field widths, never touching a buffer — the
// allocation-free way to learn a message's encoded size.
type Encoder struct {
	buf      []byte
	n        int  // bytes counted in counting mode
	counting bool // count widths instead of storing bytes
}

// Bytes returns the accumulated encoding. The returned slice aliases the
// encoder's internal buffer. Counting encoders have no bytes.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes encoded (or counted) so far.
func (e *Encoder) Len() int {
	if e.counting {
		return e.n
	}
	return len(e.buf)
}

// Reset discards the accumulated encoding, retaining capacity and mode.
func (e *Encoder) Reset() {
	e.buf = e.buf[:0]
	e.n = 0
}

// U8 appends a single byte.
func (e *Encoder) U8(v uint8) {
	if e.counting {
		e.n++
		return
	}
	e.buf = append(e.buf, v)
}

// U16 appends a big-endian 16-bit value.
func (e *Encoder) U16(v uint16) {
	if e.counting {
		e.n += 2
		return
	}
	e.buf = binary.BigEndian.AppendUint16(e.buf, v)
}

// U32 appends a big-endian 32-bit value.
func (e *Encoder) U32(v uint32) {
	if e.counting {
		e.n += 4
		return
	}
	e.buf = binary.BigEndian.AppendUint32(e.buf, v)
}

// U64 appends a big-endian 64-bit value.
func (e *Encoder) U64(v uint64) {
	if e.counting {
		e.n += 8
		return
	}
	e.buf = binary.BigEndian.AppendUint64(e.buf, v)
}

// I64 appends a big-endian 64-bit signed value (two's complement).
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Bool appends a boolean as a single 0/1 byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// Raw appends pre-encoded canonical bytes verbatim — the fast path for
// fields whose encoding is already cached (see Block.Canonical).
func (e *Encoder) Raw(b []byte) {
	if e.counting {
		e.n += len(b)
		return
	}
	e.buf = append(e.buf, b...)
}

// Blob appends a length-prefixed byte string. nil and empty encode
// identically; use OptBlob when the distinction matters.
func (e *Encoder) Blob(b []byte) {
	e.U32(uint32(len(b)))
	if e.counting {
		e.n += len(b)
		return
	}
	e.buf = append(e.buf, b...)
}

// OptBlob appends a presence flag followed by a length-prefixed byte string,
// preserving the nil / non-nil distinction (used for ±infinity range
// sentinels in LSMerkle pages).
func (e *Encoder) OptBlob(b []byte) {
	if b == nil {
		e.U8(0)
		return
	}
	e.U8(1)
	e.Blob(b)
}

// Str appends a length-prefixed string.
func (e *Encoder) Str(s string) {
	e.U32(uint32(len(s)))
	if e.counting {
		e.n += len(s)
		return
	}
	e.buf = append(e.buf, s...)
}

// ID appends a node identity.
func (e *Encoder) ID(id NodeID) { e.Str(string(id)) }

// maxPooledEncoder bounds the buffer capacity an encoder may keep when
// returned to the pool, so one giant merge payload doesn't pin memory.
const maxPooledEncoder = 1 << 20

var encoderPool = sync.Pool{New: func() any { return new(Encoder) }}

// GetEncoder returns a reset encoder from the shared pool. Callers must
// copy or consume Bytes() before PutEncoder — the buffer is reused.
func GetEncoder() *Encoder {
	return encoderPool.Get().(*Encoder)
}

// PutEncoder returns an encoder to the pool for reuse.
func PutEncoder(e *Encoder) {
	if e == nil || e.counting || cap(e.buf) > maxPooledEncoder {
		return
	}
	e.Reset()
	encoderPool.Put(e)
}

// Decoder consumes a canonical encoding. Errors are sticky: after the first
// failure every subsequent read returns a zero value and Err reports the
// original cause.
type Decoder struct {
	buf      []byte
	off      int
	err      error
	zeroCopy bool
}

// NewDecoder returns a decoder reading from b.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// NewDecoderZeroCopy returns a decoder whose Blob and OptBlob results
// alias b instead of copying it. Only safe when the caller transfers
// ownership of b to the decoded message — e.g. a transport that allocated
// the frame buffer and never reuses it.
func NewDecoderZeroCopy(b []byte) *Decoder { return &Decoder{buf: b, zeroCopy: true} }

// Err returns the first error encountered, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unconsumed bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Finish reports an error if input remains unconsumed or a decode error
// occurred. Canonical decoding must consume the entire message.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("wire: %d trailing bytes after message", len(d.buf)-d.off)
	}
	return nil
}

func (d *Decoder) fail() {
	if d.err == nil {
		d.err = ErrTruncated
	}
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.buf) {
		d.fail()
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads a single byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a big-endian 16-bit value.
func (d *Decoder) U16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

// U32 reads a big-endian 32-bit value.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// U64 reads a big-endian 64-bit value.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// I64 reads a big-endian 64-bit signed value.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Bool reads a 0/1 byte; any other value is a decode error.
func (d *Decoder) Bool() bool {
	switch d.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		if d.err == nil {
			d.err = errors.New("wire: invalid bool")
		}
		return false
	}
}

// Blob reads a length-prefixed byte string. The result is a copy — unless
// the decoder is in zero-copy mode (NewDecoderZeroCopy), in which case it
// aliases the input buffer. Zero-length blobs decode as nil for canonical
// re-encoding (Blob treats nil and empty identically).
func (d *Decoder) Blob() []byte {
	n := d.U32()
	if d.err != nil {
		return nil
	}
	if n > maxLen {
		d.err = fmt.Errorf("wire: blob length %d exceeds limit", n)
		return nil
	}
	b := d.take(int(n))
	if b == nil || n == 0 {
		return nil
	}
	if d.zeroCopy {
		return b[:n:n]
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// OptBlob reads a presence-flagged byte string written by Encoder.OptBlob.
func (d *Decoder) OptBlob() []byte {
	switch d.U8() {
	case 0:
		return nil
	case 1:
		b := d.Blob()
		if b == nil && d.err == nil {
			// Present but empty: preserve non-nil-ness.
			return []byte{}
		}
		return b
	default:
		if d.err == nil {
			d.err = errors.New("wire: invalid optional flag")
		}
		return nil
	}
}

// Str reads a length-prefixed string.
func (d *Decoder) Str() string {
	n := d.U32()
	if d.err != nil {
		return ""
	}
	if n > maxLen {
		d.err = fmt.Errorf("wire: string length %d exceeds limit", n)
		return ""
	}
	b := d.take(int(n))
	return string(b)
}

// ID reads a node identity.
func (d *Decoder) ID() NodeID { return NodeID(d.Str()) }

// Count reads a element count for a slice, bounded to avoid hostile
// allocations.
func (d *Decoder) Count() int {
	n := d.U32()
	if d.err != nil {
		return 0
	}
	if n > maxLen {
		d.err = fmt.Errorf("wire: count %d exceeds limit", n)
		return 0
	}
	return int(n)
}

// decodeSlice reads a counted sequence of T using the element decoder fn
// (typically a method expression such as (*Block).DecodeFrom). An empty
// sequence decodes as nil so round-tripped messages compare equal.
func decodeSlice[T any](d *Decoder, fn func(*T, *Decoder)) []T {
	n := d.Count()
	if d.Err() != nil || n == 0 {
		return nil
	}
	out := make([]T, n)
	for i := range out {
		fn(&out[i], d)
	}
	return out
}

// decodeBlobs reads a counted sequence of length-prefixed byte strings,
// decoding an empty sequence as nil.
func decodeBlobs(d *Decoder) [][]byte {
	n := d.Count()
	if d.Err() != nil || n == 0 {
		return nil
	}
	out := make([][]byte, n)
	for i := range out {
		out[i] = d.Blob()
	}
	return out
}

// decodeU64s reads a counted sequence of uint64s, decoding an empty
// sequence as nil.
func decodeU64s(d *Decoder) []uint64 {
	n := d.Count()
	if d.Err() != nil || n == 0 {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = d.U64()
	}
	return out
}
