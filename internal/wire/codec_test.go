package wire

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestEncoderDecoderRoundTripScalars(t *testing.T) {
	var e Encoder
	e.U8(0xAB)
	e.U16(0xBEEF)
	e.U32(0xDEADBEEF)
	e.U64(0x0123456789ABCDEF)
	e.I64(-42)
	e.Bool(true)
	e.Bool(false)
	e.Str("hello")
	e.ID(NodeID("edge-1"))

	d := NewDecoder(e.Bytes())
	if got := d.U8(); got != 0xAB {
		t.Errorf("U8 = %x", got)
	}
	if got := d.U16(); got != 0xBEEF {
		t.Errorf("U16 = %x", got)
	}
	if got := d.U32(); got != 0xDEADBEEF {
		t.Errorf("U32 = %x", got)
	}
	if got := d.U64(); got != 0x0123456789ABCDEF {
		t.Errorf("U64 = %x", got)
	}
	if got := d.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := d.Bool(); got != true {
		t.Errorf("Bool = %v", got)
	}
	if got := d.Bool(); got != false {
		t.Errorf("Bool = %v", got)
	}
	if got := d.Str(); got != "hello" {
		t.Errorf("Str = %q", got)
	}
	if got := d.ID(); got != NodeID("edge-1") {
		t.Errorf("ID = %q", got)
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestBlobRoundTripProperty(t *testing.T) {
	f := func(b []byte) bool {
		var e Encoder
		e.Blob(b)
		d := NewDecoder(e.Bytes())
		got := d.Blob()
		return d.Finish() == nil && bytes.Equal(got, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOptBlobPreservesNil(t *testing.T) {
	cases := [][]byte{nil, {}, {1}, {0, 0, 0}}
	for _, c := range cases {
		var e Encoder
		e.OptBlob(c)
		d := NewDecoder(e.Bytes())
		got := d.OptBlob()
		if err := d.Finish(); err != nil {
			t.Fatalf("OptBlob(%v): %v", c, err)
		}
		if (got == nil) != (c == nil) {
			t.Errorf("OptBlob(%v) nil-ness changed: got %v", c, got)
		}
		if !bytes.Equal(got, c) {
			t.Errorf("OptBlob(%v) = %v", c, got)
		}
	}
}

func TestDecoderTruncation(t *testing.T) {
	var e Encoder
	e.U64(7)
	full := e.Bytes()
	for cut := 0; cut < len(full); cut++ {
		d := NewDecoder(full[:cut])
		d.U64()
		if d.Err() == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func TestDecoderStickyError(t *testing.T) {
	d := NewDecoder(nil)
	d.U64() // fails
	first := d.Err()
	if first == nil {
		t.Fatal("expected error")
	}
	d.U32()
	d.Blob()
	if d.Err() != first {
		t.Fatalf("error not sticky: %v != %v", d.Err(), first)
	}
}

func TestDecoderTrailingBytes(t *testing.T) {
	var e Encoder
	e.U8(1)
	e.U8(2)
	d := NewDecoder(e.Bytes())
	d.U8()
	if err := d.Finish(); err == nil {
		t.Fatal("Finish accepted trailing bytes")
	}
}

func TestBoolRejectsNonCanonical(t *testing.T) {
	d := NewDecoder([]byte{2})
	d.Bool()
	if d.Err() == nil {
		t.Fatal("Bool accepted byte 2")
	}
}

func TestBlobLengthLimit(t *testing.T) {
	var e Encoder
	e.U32(1 << 31) // absurd length prefix
	d := NewDecoder(e.Bytes())
	d.Blob()
	if d.Err() == nil {
		t.Fatal("Blob accepted absurd length")
	}
}
