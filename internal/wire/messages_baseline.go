package wire

// Messages for the two baseline systems the paper evaluates against
// (Sections II-C and VI): Cloud-only, where the trusted cloud serves every
// request, and Edge-baseline, where writes are certified at the cloud and
// the resulting state pushed to the edge synchronously before the client is
// acknowledged.

// CloudPutRequest sends a write (log add or key-value put) directly to the
// trusted cloud node. Used by both baselines' write paths.
type CloudPutRequest struct {
	Entry Entry
}

// MsgKind implements Message.
func (*CloudPutRequest) MsgKind() Kind { return KindCloudPutRequest }

// EncodeTo implements Message.
func (m *CloudPutRequest) EncodeTo(e *Encoder) { m.Entry.EncodeTo(e) }

// DecodeFrom implements Message.
func (m *CloudPutRequest) DecodeFrom(d *Decoder) { m.Entry.DecodeFrom(d) }

// CloudPutResponse acknowledges a Cloud-only write. The cloud is trusted,
// so no proof accompanies the response. Seq echoes the entry's client
// sequence number for correlation.
type CloudPutResponse struct {
	Seq uint64
	BID uint64
	OK  bool
}

// MsgKind implements Message.
func (*CloudPutResponse) MsgKind() Kind { return KindCloudPutResponse }

// EncodeTo implements Message.
func (m *CloudPutResponse) EncodeTo(e *Encoder) {
	e.U64(m.Seq)
	e.U64(m.BID)
	e.Bool(m.OK)
}

// DecodeFrom implements Message.
func (m *CloudPutResponse) DecodeFrom(d *Decoder) {
	m.Seq = d.U64()
	m.BID = d.U64()
	m.OK = d.Bool()
}

// CloudGetRequest reads a key directly from the trusted cloud (Cloud-only).
type CloudGetRequest struct {
	Key   []byte
	ReqID uint64
}

// MsgKind implements Message.
func (*CloudGetRequest) MsgKind() Kind { return KindCloudGetRequest }

// EncodeTo implements Message.
func (m *CloudGetRequest) EncodeTo(e *Encoder) {
	e.Blob(m.Key)
	e.U64(m.ReqID)
}

// DecodeFrom implements Message.
func (m *CloudGetRequest) DecodeFrom(d *Decoder) {
	m.Key = d.Blob()
	m.ReqID = d.U64()
}

// CloudGetResponse answers a Cloud-only read. Trusted, so proof-free — the
// source of Cloud-only's lower best-case read latency in Figure 5(d).
type CloudGetResponse struct {
	ReqID uint64
	Found bool
	Value []byte
	Ver   uint64
}

// MsgKind implements Message.
func (*CloudGetResponse) MsgKind() Kind { return KindCloudGetResponse }

// EncodeTo implements Message.
func (m *CloudGetResponse) EncodeTo(e *Encoder) {
	e.U64(m.ReqID)
	e.Bool(m.Found)
	e.Blob(m.Value)
	e.U64(m.Ver)
}

// DecodeFrom implements Message.
func (m *CloudGetResponse) DecodeFrom(d *Decoder) {
	m.ReqID = d.U64()
	m.Found = d.Bool()
	m.Value = d.Blob()
	m.Ver = d.U64()
}

// EBPutRequest is the Edge-baseline write path entry point: the client
// sends the write to the cloud, which certifies it, updates the index,
// pushes state to the edge, and only then acknowledges.
type EBPutRequest struct {
	Entry Entry
	Edge  NodeID // edge node whose partition this write belongs to
}

// MsgKind implements Message.
func (*EBPutRequest) MsgKind() Kind { return KindEBPutRequest }

// EncodeTo implements Message.
func (m *EBPutRequest) EncodeTo(e *Encoder) {
	m.Entry.EncodeTo(e)
	e.ID(m.Edge)
}

// DecodeFrom implements Message.
func (m *EBPutRequest) DecodeFrom(d *Decoder) {
	m.Entry.DecodeFrom(d)
	m.Edge = d.ID()
}

// EBPutResponse acknowledges an Edge-baseline write after the edge holds
// the certified state. Seq echoes the entry's client sequence number.
type EBPutResponse struct {
	Seq uint64
	BID uint64
	OK  bool
}

// MsgKind implements Message.
func (*EBPutResponse) MsgKind() Kind { return KindEBPutResponse }

// EncodeTo implements Message.
func (m *EBPutResponse) EncodeTo(e *Encoder) {
	e.U64(m.Seq)
	e.U64(m.BID)
	e.Bool(m.OK)
}

// DecodeFrom implements Message.
func (m *EBPutResponse) DecodeFrom(d *Decoder) {
	m.Seq = d.U64()
	m.BID = d.U64()
	m.OK = d.Bool()
}

// EBStatePush carries the newly certified block (with its certificate),
// the full replacement page sets of any levels rewritten by a cloud-side
// compaction (pages carry their Level), the refreshed level roots and the
// signed global root from cloud to edge. Unlike WedgeChain's data-free
// certification, the full data crosses the WAN — the bandwidth cost the
// paper's Figure 4 attributes Edge-baseline's poor scaling to.
type EBStatePush struct {
	Epoch    uint64
	Block    Block
	Proof    BlockProof // cloud certificate for Block
	L0From   uint64     // blocks below this id were compacted into levels
	Pages    []Page
	Roots    [][]byte
	Global   SignedRoot
	CloudSig []byte
}

// MsgKind implements Message.
func (*EBStatePush) MsgKind() Kind { return KindEBStatePush }

// EncodeTo implements Message.
func (m *EBStatePush) EncodeTo(e *Encoder) {
	m.AppendBody(e)
	e.Blob(m.CloudSig)
}

func (m *EBStatePush) AppendBody(e *Encoder) {
	e.U64(m.Epoch)
	m.Block.EncodeTo(e)
	m.Proof.EncodeTo(e)
	e.U64(m.L0From)
	e.U32(uint32(len(m.Pages)))
	for i := range m.Pages {
		m.Pages[i].EncodeTo(e)
	}
	e.U32(uint32(len(m.Roots)))
	for _, r := range m.Roots {
		e.Blob(r)
	}
	m.Global.EncodeTo(e)
}

// DecodeFrom implements Message.
func (m *EBStatePush) DecodeFrom(d *Decoder) {
	m.Epoch = d.U64()
	m.Block.DecodeFrom(d)
	m.Proof.DecodeFrom(d)
	m.L0From = d.U64()
	m.Pages = decodeSlice(d, (*Page).DecodeFrom)
	m.Roots = decodeBlobs(d)
	m.Global.DecodeFrom(d)
	m.CloudSig = d.Blob()
}

// SignableBytes returns the bytes the cloud signs.
func (m *EBStatePush) SignableBytes() []byte {
	var e Encoder
	m.AppendBody(&e)
	return e.Bytes()
}

// EBStateAck confirms the edge has durably applied a state push, releasing
// the cloud to acknowledge the client.
type EBStateAck struct {
	Epoch   uint64
	EdgeSig []byte
}

// MsgKind implements Message.
func (*EBStateAck) MsgKind() Kind { return KindEBStateAck }

// EncodeTo implements Message.
func (m *EBStateAck) EncodeTo(e *Encoder) {
	e.U64(m.Epoch)
	e.Blob(m.EdgeSig)
}

// DecodeFrom implements Message.
func (m *EBStateAck) DecodeFrom(d *Decoder) {
	m.Epoch = d.U64()
	m.EdgeSig = d.Blob()
}

// SignableBytes returns the bytes the edge signs.
func (m *EBStateAck) SignableBytes() []byte {
	var e Encoder
	e.U64(m.Epoch)
	return e.Bytes()
}

// Ping measures link round-trip time (Table I reproduction).
type Ping struct {
	Seq uint64
	Ts  int64
}

// MsgKind implements Message.
func (*Ping) MsgKind() Kind { return KindPing }

// EncodeTo implements Message.
func (m *Ping) EncodeTo(e *Encoder) {
	e.U64(m.Seq)
	e.I64(m.Ts)
}

// DecodeFrom implements Message.
func (m *Ping) DecodeFrom(d *Decoder) {
	m.Seq = d.U64()
	m.Ts = d.I64()
}

// Pong echoes a Ping.
type Pong struct {
	Seq uint64
	Ts  int64 // original send timestamp from the Ping
}

// MsgKind implements Message.
func (*Pong) MsgKind() Kind { return KindPong }

// EncodeTo implements Message.
func (m *Pong) EncodeTo(e *Encoder) {
	e.U64(m.Seq)
	e.I64(m.Ts)
}

// DecodeFrom implements Message.
func (m *Pong) DecodeFrom(d *Decoder) {
	m.Seq = d.U64()
	m.Ts = d.I64()
}
