package wire

// Batched write requests. The paper batches add and put requests in all
// experiments ("each batch consists of 100 put operations"); these
// messages carry a client's whole batch in one request. Each entry still
// carries its own client signature, so servers verify entries exactly as
// they do for single-entry requests.

// PutBatch submits a batch of writes to a WedgeChain edge node. Entries
// with a key are puts; entries without are log adds.
type PutBatch struct {
	Entries []Entry
}

// MsgKind implements Message.
func (*PutBatch) MsgKind() Kind { return KindPutBatch }

// EncodeTo implements Message.
func (m *PutBatch) EncodeTo(e *Encoder) {
	e.U32(uint32(len(m.Entries)))
	for i := range m.Entries {
		m.Entries[i].EncodeTo(e)
	}
}

// DecodeFrom implements Message.
func (m *PutBatch) DecodeFrom(d *Decoder) {
	m.Entries = decodeSlice(d, (*Entry).DecodeFrom)
}

// CloudPutBatch submits a batch of writes to the Cloud-only server.
type CloudPutBatch struct {
	Entries []Entry
}

// MsgKind implements Message.
func (*CloudPutBatch) MsgKind() Kind { return KindCloudPutBatch }

// EncodeTo implements Message.
func (m *CloudPutBatch) EncodeTo(e *Encoder) {
	e.U32(uint32(len(m.Entries)))
	for i := range m.Entries {
		m.Entries[i].EncodeTo(e)
	}
}

// DecodeFrom implements Message.
func (m *CloudPutBatch) DecodeFrom(d *Decoder) {
	m.Entries = decodeSlice(d, (*Entry).DecodeFrom)
}

// EBPutBatch submits a batch of writes to the Edge-baseline cloud.
type EBPutBatch struct {
	Edge    NodeID
	Entries []Entry
}

// MsgKind implements Message.
func (*EBPutBatch) MsgKind() Kind { return KindEBPutBatch }

// EncodeTo implements Message.
func (m *EBPutBatch) EncodeTo(e *Encoder) {
	e.ID(m.Edge)
	e.U32(uint32(len(m.Entries)))
	for i := range m.Entries {
		m.Entries[i].EncodeTo(e)
	}
}

// DecodeFrom implements Message.
func (m *EBPutBatch) DecodeFrom(d *Decoder) {
	m.Edge = d.ID()
	m.Entries = decodeSlice(d, (*Entry).DecodeFrom)
}
