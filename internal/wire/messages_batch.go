package wire

// Batched write requests. The paper batches add and put requests in all
// experiments ("each batch consists of 100 put operations"); these
// messages carry a client's whole batch in one request. Each entry still
// carries its own client signature, so servers verify entries exactly as
// they do for single-entry requests.

// PutBatch submits a batch of writes to a WedgeChain edge node. Entries
// with a key are puts; entries without are log adds.
//
// Two authentication modes coexist. In the original per-entry mode
// (Client empty, BatchSig nil) every entry carries its own client
// signature and the edge verifies each one. In session-signed mode the
// client signs the whole batch once — BatchSig covers Client and every
// entry byte-for-byte — and the per-entry signatures may be empty: one
// Ed25519 verification authenticates the batch, amortizing the dominant
// per-write crypto cost across the paper's batch size B. Splicing is not
// possible: an entry lifted out of a signed batch has no individual
// signature, and any reorder, subset or substitution breaks BatchSig.
type PutBatch struct {
	Client   NodeID // batch signer; must match every entry in signed mode
	Entries  []Entry
	BatchSig []byte // nil = per-entry signatures
}

// MsgKind implements Message.
func (*PutBatch) MsgKind() Kind { return KindPutBatch }

// EncodeTo implements Message.
func (m *PutBatch) EncodeTo(e *Encoder) {
	m.AppendBody(e)
	e.Blob(m.BatchSig)
}

// AppendBody appends everything the batch signature covers.
func (m *PutBatch) AppendBody(e *Encoder) {
	e.ID(m.Client)
	e.U32(uint32(len(m.Entries)))
	for i := range m.Entries {
		m.Entries[i].EncodeTo(e)
	}
}

// DecodeFrom implements Message.
func (m *PutBatch) DecodeFrom(d *Decoder) {
	m.Client = d.ID()
	m.Entries = decodeSlice(d, (*Entry).DecodeFrom)
	m.BatchSig = d.Blob()
}

// SignableBytes returns the bytes the client signs in session-signed mode.
func (m *PutBatch) SignableBytes() []byte {
	var e Encoder
	m.AppendBody(&e)
	return e.Bytes()
}

// CloudPutBatch submits a batch of writes to the Cloud-only server.
type CloudPutBatch struct {
	Entries []Entry
}

// MsgKind implements Message.
func (*CloudPutBatch) MsgKind() Kind { return KindCloudPutBatch }

// EncodeTo implements Message.
func (m *CloudPutBatch) EncodeTo(e *Encoder) {
	e.U32(uint32(len(m.Entries)))
	for i := range m.Entries {
		m.Entries[i].EncodeTo(e)
	}
}

// DecodeFrom implements Message.
func (m *CloudPutBatch) DecodeFrom(d *Decoder) {
	m.Entries = decodeSlice(d, (*Entry).DecodeFrom)
}

// EBPutBatch submits a batch of writes to the Edge-baseline cloud.
type EBPutBatch struct {
	Edge    NodeID
	Entries []Entry
}

// MsgKind implements Message.
func (*EBPutBatch) MsgKind() Kind { return KindEBPutBatch }

// EncodeTo implements Message.
func (m *EBPutBatch) EncodeTo(e *Encoder) {
	e.ID(m.Edge)
	e.U32(uint32(len(m.Entries)))
	for i := range m.Entries {
		m.Entries[i].EncodeTo(e)
	}
}

// DecodeFrom implements Message.
func (m *EBPutBatch) DecodeFrom(d *Decoder) {
	m.Edge = d.ID()
	m.Entries = decodeSlice(d, (*Entry).DecodeFrom)
}
