package wire

// Messages of the certified catch-up protocol: a restarted follower or a
// demoted ex-leader rebuilds its mirror of the chain by fetching the
// frozen blocks it misses from the current leader and verifying each one
// against the cloud's certificates. The sync peer is as untrusted as any
// edge — it signs what it ships (ServerSig is block-ack evidence), so a
// lying peer convicts through the existing dispute machinery.

// CatchUpRequest asks the chain's current leader for the frozen blocks
// from position From onward. Signed by the requesting node so a leader
// only serves group members (and the signature makes spoofed fetch storms
// attributable).
type CatchUpRequest struct {
	Chain NodeID // chain being caught up
	Node  NodeID // requesting replica
	From  uint64 // first missing block id
	Ts    int64
	Sig   []byte
}

// MsgKind implements Message.
func (*CatchUpRequest) MsgKind() Kind { return KindCatchUpRequest }

// EncodeTo implements Message.
func (m *CatchUpRequest) EncodeTo(e *Encoder) {
	m.AppendBody(e)
	e.Blob(m.Sig)
}

func (m *CatchUpRequest) AppendBody(e *Encoder) {
	e.ID(m.Chain)
	e.ID(m.Node)
	e.U64(m.From)
	e.I64(m.Ts)
}

// DecodeFrom implements Message.
func (m *CatchUpRequest) DecodeFrom(d *Decoder) {
	m.Chain = d.ID()
	m.Node = d.ID()
	m.From = d.U64()
	m.Ts = d.I64()
	m.Sig = d.Blob()
}

// SignableBytes returns the bytes the requesting node signs.
func (m *CatchUpRequest) SignableBytes() []byte {
	var e Encoder
	m.AppendBody(&e)
	return e.Bytes()
}

// CatchUpItem is one block of a catch-up response. ServerSig is the
// serving leader's signature over the block-ack body (BID ‖ digest) —
// the same convicting evidence shape as AddResponse and ReplicateBlock —
// so the server vouches for what it ships: if the shipped block
// contradicts a cloud certificate, the receiver repackages Block and
// ServerSig as an AddResponse and files a DisputeAddLie. Certified
// blocks carry their certificate so the receiver can verify and advance
// its certified prefix without a cloud round-trip per block.
type CatchUpItem struct {
	Block     Block
	ServerSig []byte
	HasCert   bool
	Cert      BlockProof // valid only when HasCert
}

// CatchUpBlocks is the leader's reply to a CatchUpRequest: a bounded run
// of consecutive frozen blocks starting at From. Through is the chain's
// current block count; a receiver still short of Through re-requests
// from its new frontier, so arbitrarily long gaps heal in bounded
// messages. Authentication is per-item (ServerSig), not per-message.
type CatchUpBlocks struct {
	Chain   NodeID // chain being caught up
	Leader  NodeID // serving node
	From    uint64 // id of Items[0] (meaningful only when Items is non-empty)
	Through uint64 // server's total block count at serve time
	Items   []CatchUpItem
}

// MsgKind implements Message.
func (*CatchUpBlocks) MsgKind() Kind { return KindCatchUpBlocks }

// EncodeTo implements Message.
func (m *CatchUpBlocks) EncodeTo(e *Encoder) {
	e.ID(m.Chain)
	e.ID(m.Leader)
	e.U64(m.From)
	e.U64(m.Through)
	e.U32(uint32(len(m.Items)))
	for i := range m.Items {
		it := &m.Items[i]
		it.Block.EncodeTo(e)
		e.Blob(it.ServerSig)
		if it.HasCert {
			e.U32(1)
			it.Cert.EncodeTo(e)
		} else {
			e.U32(0)
		}
	}
}

// DecodeFrom implements Message.
func (m *CatchUpBlocks) DecodeFrom(d *Decoder) {
	m.Chain = d.ID()
	m.Leader = d.ID()
	m.From = d.U64()
	m.Through = d.U64()
	n := d.Count()
	if d.Err() != nil || n == 0 {
		m.Items = nil
		return
	}
	m.Items = make([]CatchUpItem, n)
	for i := range m.Items {
		it := &m.Items[i]
		it.Block.DecodeFrom(d)
		it.ServerSig = d.Blob()
		if d.U32() != 0 {
			it.HasCert = true
			it.Cert.DecodeFrom(d)
		}
	}
}

// GroupJoin is the cloud's signed admission of a recovered node back into
// a chain's replica group. Sent to both the rejoining node (adopt the
// current leader and epoch, start catching up) and the leader (start
// replicating new blocks to the rejoined follower). Epoch carries the
// chain's current leadership epoch so a stale join can never demote a
// node's view of a newer regime.
type GroupJoin struct {
	Chain    NodeID // chain the node rejoins
	Node     NodeID // rejoining replica
	Leader   NodeID // current leader it follows
	Epoch    uint64 // current leadership epoch
	Ts       int64
	CloudSig []byte
}

// MsgKind implements Message.
func (*GroupJoin) MsgKind() Kind { return KindGroupJoin }

// EncodeTo implements Message.
func (m *GroupJoin) EncodeTo(e *Encoder) {
	m.AppendBody(e)
	e.Blob(m.CloudSig)
}

func (m *GroupJoin) AppendBody(e *Encoder) {
	e.ID(m.Chain)
	e.ID(m.Node)
	e.ID(m.Leader)
	e.U64(m.Epoch)
	e.I64(m.Ts)
}

// DecodeFrom implements Message.
func (m *GroupJoin) DecodeFrom(d *Decoder) {
	m.Chain = d.ID()
	m.Node = d.ID()
	m.Leader = d.ID()
	m.Epoch = d.U64()
	m.Ts = d.I64()
	m.CloudSig = d.Blob()
}

// SignableBytes returns the bytes the cloud signs.
func (m *GroupJoin) SignableBytes() []byte {
	var e Encoder
	m.AppendBody(&e)
	return e.Bytes()
}

// FrontierRequest asks the cloud for a chain's certified frontier. The
// cloud answers with a freshly signed Gossip for the chain — the same
// artifact the periodic gossip pushes — giving a recovering node an
// on-demand, trusted statement of how much certified history it must
// hold before it is safely promotable.
type FrontierRequest struct {
	Chain NodeID
}

// MsgKind implements Message.
func (*FrontierRequest) MsgKind() Kind { return KindFrontierRequest }

// EncodeTo implements Message.
func (m *FrontierRequest) EncodeTo(e *Encoder) { e.ID(m.Chain) }

// DecodeFrom implements Message.
func (m *FrontierRequest) DecodeFrom(d *Decoder) { m.Chain = d.ID() }
