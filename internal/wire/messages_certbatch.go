package wire

// Batched certification messages: the amortized-signature trick the
// write acks use (one signature over a digest-derived body, regardless
// of payload count) applied to the certification channel in both
// directions. A batch covers the contiguous run of block ids
// [Start, Start+len(Digests)) for one chain; contiguity is structural —
// there is no per-entry bid on the wire — so a batch can never describe
// a gap, and each triple (chain, bid, digest) is recovered by index.
//
// Batches are strictly an optimization over BlockCertify/BlockProof:
// every verifier accepts either shape, and dispute re-delivery always
// falls back to individually signed proofs (a client must be able to
// hand a third party evidence about one block without shipping its
// neighbours).

// BlockCertifyBatch is the amortized certification request from edge to
// cloud: one edge signature covers a contiguous run of block digests.
// Like BlockCertify it is data-free — digests only, never block
// contents (there is no full-data batch shape; the A1 full-data
// ablation keeps per-block requests).
type BlockCertifyBatch struct {
	Edge    NodeID
	Start   uint64
	Digests [][]byte
	EdgeSig []byte
}

// MsgKind implements Message.
func (*BlockCertifyBatch) MsgKind() Kind { return KindBlockCertifyBatch }

// EncodeTo implements Message.
func (m *BlockCertifyBatch) EncodeTo(e *Encoder) {
	m.AppendBody(e)
	e.Blob(m.EdgeSig)
}

func (m *BlockCertifyBatch) AppendBody(e *Encoder) {
	e.ID(m.Edge)
	e.U64(m.Start)
	e.U32(uint32(len(m.Digests)))
	for _, d := range m.Digests {
		e.Blob(d)
	}
}

// DecodeFrom implements Message.
func (m *BlockCertifyBatch) DecodeFrom(d *Decoder) {
	m.Edge = d.ID()
	m.Start = d.U64()
	m.Digests = decodeBlobs(d)
	m.EdgeSig = d.Blob()
}

// SignableBytes returns the bytes the edge signs.
func (m *BlockCertifyBatch) SignableBytes() []byte {
	var e Encoder
	m.AppendBody(&e)
	return e.Bytes()
}

// BlockCertBatch is the cloud's batched certification proof: one cloud
// signature certifies the digest of every block in the contiguous run
// [Start, Start+len(Digests)). Wire-compatible supersetting of
// BlockProof — edges, followers and clients apply each covered (chain,
// bid, digest) triple exactly as they would a single proof.
type BlockCertBatch struct {
	Edge     NodeID
	Start    uint64
	Digests  [][]byte
	CloudSig []byte
}

// MsgKind implements Message.
func (*BlockCertBatch) MsgKind() Kind { return KindBlockCertBatch }

// EncodeTo implements Message.
func (m *BlockCertBatch) EncodeTo(e *Encoder) {
	m.AppendBody(e)
	e.Blob(m.CloudSig)
}

func (m *BlockCertBatch) AppendBody(e *Encoder) {
	e.ID(m.Edge)
	e.U64(m.Start)
	e.U32(uint32(len(m.Digests)))
	for _, d := range m.Digests {
		e.Blob(d)
	}
}

// DecodeFrom implements Message.
func (m *BlockCertBatch) DecodeFrom(d *Decoder) {
	m.Edge = d.ID()
	m.Start = d.U64()
	m.Digests = decodeBlobs(d)
	m.CloudSig = d.Blob()
}

// SignableBytes returns the bytes the cloud signs.
func (m *BlockCertBatch) SignableBytes() []byte {
	var e Encoder
	m.AppendBody(&e)
	return e.Bytes()
}
