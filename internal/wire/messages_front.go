package wire

// Front-door admission control (million-session front door).

// Overloaded is an edge's signed load-shed signal: instead of silently
// dropping a write when the uncertified backlog is at its admission cap,
// the edge tells the client exactly which operation was shed and when to
// come back. Seq echoes the shed entry's sequence number (writes); ReqID
// echoes the request id (reads/gets, 0 for writes). RetryAfter is a hint
// in nanoseconds — the edge's estimate of when certification progress
// will reopen admission — and Backlog is the uncertified block count
// behind the decision, for diagnostics. The signature makes the shed
// attributable: a client can prove the edge refused service, and a forged
// shed cannot silently starve someone else's session.
type Overloaded struct {
	Seq        uint64
	ReqID      uint64
	RetryAfter int64
	Backlog    uint64
	EdgeSig    []byte
}

// MsgKind implements Message.
func (*Overloaded) MsgKind() Kind { return KindOverloaded }

// EncodeTo implements Message.
func (m *Overloaded) EncodeTo(e *Encoder) {
	m.AppendBody(e)
	e.Blob(m.EdgeSig)
}

// AppendBody appends the signable body (everything but the signature).
func (m *Overloaded) AppendBody(e *Encoder) {
	e.U64(m.Seq)
	e.U64(m.ReqID)
	e.I64(m.RetryAfter)
	e.U64(m.Backlog)
}

// DecodeFrom implements Message.
func (m *Overloaded) DecodeFrom(d *Decoder) {
	m.Seq = d.U64()
	m.ReqID = d.U64()
	m.RetryAfter = d.I64()
	m.Backlog = d.U64()
	m.EdgeSig = d.Blob()
}

// SignableBytes returns the bytes the edge signs.
func (m *Overloaded) SignableBytes() []byte {
	var e Encoder
	m.AppendBody(&e)
	return e.Bytes()
}
