package wire

// Messages of the LSMerkle key-value protocol (Section V).

// PutRequest applies a key-value write through the edge node's LSMerkle
// index. The write is batched into a WedgeChain log block which doubles as
// an L0 page, so puts inherit the lazy-certification lifecycle of adds.
type PutRequest struct {
	Entry Entry
}

// MsgKind implements Message.
func (*PutRequest) MsgKind() Kind { return KindPutRequest }

// EncodeTo implements Message.
func (m *PutRequest) EncodeTo(e *Encoder) { m.Entry.EncodeTo(e) }

// DecodeFrom implements Message.
func (m *PutRequest) DecodeFrom(d *Decoder) { m.Entry.DecodeFrom(d) }

// PutResponse mirrors AddResponse for the key-value interface: the signed
// block containing the put, establishing Phase I commit.
type PutResponse struct {
	BID     uint64
	Block   Block
	EdgeSig []byte

	encSize int // cached encoded size; see sizeMemoized
}

// MsgKind implements Message.
func (*PutResponse) MsgKind() Kind { return KindPutResponse }

// EncodeTo implements Message.
func (m *PutResponse) EncodeTo(e *Encoder) {
	e.U64(m.BID)
	m.Block.EncodeTo(e)
	e.Blob(m.EdgeSig)
}

// AppendBody appends the signable body: the size-independent block-ack
// body (BID + block digest), byte-identical to AddResponse's so the edge's
// one shared block-ack signature covers both response kinds.
func (m *PutResponse) AppendBody(e *Encoder) {
	AppendBlockAckBody(e, m.BID, m.Block.BodyDigest())
}

// DecodeFrom implements Message.
func (m *PutResponse) DecodeFrom(d *Decoder) {
	m.BID = d.U64()
	m.Block.DecodeFrom(d)
	m.EdgeSig = d.Blob()
	m.encSize = 0
}

// SignableBytes returns the bytes the edge signs.
func (m *PutResponse) SignableBytes() []byte {
	var e Encoder
	m.AppendBody(&e)
	return e.Bytes()
}

func (m *PutResponse) encodedSizeMemo() int { return m.encSize }

func (m *PutResponse) memoizeEncodedSize(n int) {
	if m.Block.frozen() {
		m.encSize = n
	}
}

// GetRequest looks a key up in the edge's LSMerkle index.
type GetRequest struct {
	Key   []byte
	ReqID uint64
}

// MsgKind implements Message.
func (*GetRequest) MsgKind() Kind { return KindGetRequest }

// EncodeTo implements Message.
func (m *GetRequest) EncodeTo(e *Encoder) {
	e.Blob(m.Key)
	e.U64(m.ReqID)
}

// DecodeFrom implements Message.
func (m *GetRequest) DecodeFrom(d *Decoder) {
	m.Key = d.Blob()
	m.ReqID = d.U64()
}

// LevelProof proves one page's membership in its level's Merkle tree: the
// page itself, its leaf index, and the audit path (bottom-up sibling
// hashes). The client recomputes the leaf hash from the page bytes and
// folds the path to the level root.
type LevelProof struct {
	Level uint32
	Page  Page
	Index uint32
	Width uint32 // total leaves in the level tree, needed to fold the path
	Path  [][]byte
}

// EncodeTo appends the proof's canonical encoding.
func (lp *LevelProof) EncodeTo(e *Encoder) {
	e.U32(lp.Level)
	lp.Page.EncodeTo(e)
	e.U32(lp.Index)
	e.U32(lp.Width)
	e.U32(uint32(len(lp.Path)))
	for _, h := range lp.Path {
		e.Blob(h)
	}
}

// DecodeFrom reads the proof.
func (lp *LevelProof) DecodeFrom(d *Decoder) {
	lp.Level = d.U32()
	lp.Page.DecodeFrom(d)
	lp.Index = d.U32()
	lp.Width = d.U32()
	lp.Path = decodeBlobs(d)
}

// GetProof is the complete authenticity evidence attached to a get
// response, per Section V-B "Reading":
//
//   - every L0 page (block) of the uncompacted window that might hold the
//     key, with its Phase II certificate where available (missing
//     certificates put the read in Phase I commit);
//   - a pruned reference (digest-committed key summary, no entries) for
//     every window block whose summary provably excludes the key, so the
//     window stays contiguous without re-shipping irrelevant blocks;
//   - for each level between L1 and the level that resolved the key, the
//     single intersecting page with its Merkle audit path;
//   - all level roots, so the client can recompute the global root;
//   - the cloud-signed global root with its freshness timestamp.
type GetProof struct {
	L0Blocks      []Block
	L0Certs       []BlockProof // aligned with L0Blocks; empty Digest = uncertified
	L0Pruned      []PrunedBlock
	L0PrunedCerts []BlockProof // aligned with L0Pruned; empty CloudSig = uncertified
	Levels        []LevelProof
	Roots         [][]byte // level roots 1..n in order
	Global        SignedRoot
}

// EncodeTo appends the proof's canonical encoding.
func (gp *GetProof) EncodeTo(e *Encoder) {
	e.U32(uint32(len(gp.L0Blocks)))
	for i := range gp.L0Blocks {
		gp.L0Blocks[i].EncodeTo(e)
	}
	e.U32(uint32(len(gp.L0Certs)))
	for i := range gp.L0Certs {
		gp.L0Certs[i].EncodeTo(e)
	}
	appendPrunedWindow(e, gp.L0Pruned, gp.L0PrunedCerts)
	e.U32(uint32(len(gp.Levels)))
	for i := range gp.Levels {
		gp.Levels[i].EncodeTo(e)
	}
	e.U32(uint32(len(gp.Roots)))
	for _, r := range gp.Roots {
		e.Blob(r)
	}
	gp.Global.EncodeTo(e)
}

// AppendSignable appends the proof's signable form, in which every L0
// block — full or pruned — is represented by its 32-byte digest instead
// of its body: the same size-independent signing scheme the block
// acknowledgements use, so the get path's signature cost no longer grows
// with the uncompacted L0 window. Full and pruned digests sit in separate
// sections, which binds the chosen representation: converting a served
// block into a pruned reference (or back) changes the signable body, so
// nobody but the signing edge can re-shape its evidence. digests supplies
// per-block digests in L0Blocks order (the edge's cut-time cache); nil
// recomputes each from the block fields, which is what verifiers must do
// so a poisoned cache can never satisfy the check. Pruned digests are
// always recomputed from the shipped fields — they hash a ~hundred-byte
// preimage, not the entries.
func (gp *GetProof) AppendSignable(e *Encoder, digests [][]byte) {
	appendL0Digests(e, gp.L0Blocks, digests)
	e.U32(uint32(len(gp.L0Certs)))
	for i := range gp.L0Certs {
		gp.L0Certs[i].EncodeTo(e)
	}
	appendPrunedSignable(e, gp.L0Pruned, gp.L0PrunedCerts)
	e.U32(uint32(len(gp.Levels)))
	for i := range gp.Levels {
		gp.Levels[i].EncodeTo(e)
	}
	e.U32(uint32(len(gp.Roots)))
	for _, r := range gp.Roots {
		e.Blob(r)
	}
	gp.Global.EncodeTo(e)
}

// DecodeFrom reads the proof.
func (gp *GetProof) DecodeFrom(d *Decoder) {
	gp.L0Blocks = decodeSlice(d, (*Block).DecodeFrom)
	gp.L0Certs = decodeSlice(d, (*BlockProof).DecodeFrom)
	gp.L0Pruned = decodeSlice(d, (*PrunedBlock).DecodeFrom)
	gp.L0PrunedCerts = decodeSlice(d, (*BlockProof).DecodeFrom)
	gp.Levels = decodeSlice(d, (*LevelProof).DecodeFrom)
	gp.Roots = decodeBlobs(d)
	gp.Global.DecodeFrom(d)
}

// GetResponse answers a GetRequest with the value (or a verifiable
// non-existence statement) plus the full GetProof. Key echoes the
// requested key under the edge's signature, making the response
// self-contained dispute evidence: the cloud can re-run the pruned-window
// exclusion checks against the signed key without ever seeing the request
// (the same role Start/End play on scan responses).
type GetResponse struct {
	ReqID   uint64
	Key     []byte
	Found   bool
	Value   []byte
	Ver     uint64
	Proof   GetProof
	EdgeSig []byte

	encSize int // cached encoded size; see sizeMemoized
}

// MsgKind implements Message.
func (*GetResponse) MsgKind() Kind { return KindGetResponse }

// EncodeTo implements Message.
func (m *GetResponse) EncodeTo(e *Encoder) {
	e.U64(m.ReqID)
	e.Blob(m.Key)
	e.Bool(m.Found)
	e.Blob(m.Value)
	e.U64(m.Ver)
	m.Proof.EncodeTo(e)
	e.Blob(m.EdgeSig)
}

// AppendBody appends the signable body. Unlike the wire encoding, the
// signable body represents each L0 block by its recomputed 32-byte digest
// (GetProof.AppendSignable), making the edge's get signature — like the
// block acknowledgements — O(1) in block size.
func (m *GetResponse) AppendBody(e *Encoder) {
	m.AppendBodyWithDigests(e, nil)
}

// AppendBodyWithDigests appends the signable body using L0 digests the
// caller already holds — the edge's serve path, where every block's digest
// was cached at block cut. Verifiers never use this entry point: they go
// through AppendBody, which recomputes the digests from the blocks they
// received, so a tampered body fails the signature check.
func (m *GetResponse) AppendBodyWithDigests(e *Encoder, digests [][]byte) {
	e.U64(m.ReqID)
	e.Blob(m.Key)
	e.Bool(m.Found)
	e.Blob(m.Value)
	e.U64(m.Ver)
	m.Proof.AppendSignable(e, digests)
}

// DecodeFrom implements Message.
func (m *GetResponse) DecodeFrom(d *Decoder) {
	m.ReqID = d.U64()
	m.Key = d.Blob()
	m.Found = d.Bool()
	m.Value = d.Blob()
	m.Ver = d.U64()
	m.Proof.DecodeFrom(d)
	m.EdgeSig = d.Blob()
	m.encSize = 0
}

// SignableBytes returns the bytes the edge signs.
func (m *GetResponse) SignableBytes() []byte {
	var e Encoder
	m.AppendBody(&e)
	return e.Bytes()
}

func (m *GetResponse) encodedSizeMemo() int { return m.encSize }

func (m *GetResponse) memoizeEncodedSize(n int) {
	for i := range m.Proof.L0Blocks {
		if !m.Proof.L0Blocks[i].frozen() {
			return
		}
	}
	m.encSize = n
}

// MergeRequest ships the pages undergoing an LSMerkle compaction from the
// edge to the cloud. For FromLevel == 0 the sources are log blocks (L0
// pages); otherwise they are the pages of FromLevel. DstPages are the
// current pages of FromLevel+1. The cloud verifies everything against its
// own certified digests and leaf tables before merging.
type MergeRequest struct {
	Edge      NodeID
	ReqID     uint64
	FromLevel uint32
	L0Blocks  []Block
	SrcPages  []Page
	DstPages  []Page
	EdgeSig   []byte
}

// MsgKind implements Message.
func (*MergeRequest) MsgKind() Kind { return KindMergeRequest }

// EncodeTo implements Message.
func (m *MergeRequest) EncodeTo(e *Encoder) {
	m.AppendBody(e)
	e.Blob(m.EdgeSig)
}

func (m *MergeRequest) AppendBody(e *Encoder) {
	e.ID(m.Edge)
	e.U64(m.ReqID)
	e.U32(m.FromLevel)
	e.U32(uint32(len(m.L0Blocks)))
	for i := range m.L0Blocks {
		m.L0Blocks[i].EncodeTo(e)
	}
	e.U32(uint32(len(m.SrcPages)))
	for i := range m.SrcPages {
		m.SrcPages[i].EncodeTo(e)
	}
	e.U32(uint32(len(m.DstPages)))
	for i := range m.DstPages {
		m.DstPages[i].EncodeTo(e)
	}
}

// DecodeFrom implements Message.
func (m *MergeRequest) DecodeFrom(d *Decoder) {
	m.Edge = d.ID()
	m.ReqID = d.U64()
	m.FromLevel = d.U32()
	m.L0Blocks = decodeSlice(d, (*Block).DecodeFrom)
	m.SrcPages = decodeSlice(d, (*Page).DecodeFrom)
	m.DstPages = decodeSlice(d, (*Page).DecodeFrom)
	m.EdgeSig = d.Blob()
}

// SignableBytes returns the bytes the edge signs.
func (m *MergeRequest) SignableBytes() []byte {
	var e Encoder
	m.AppendBody(&e)
	return e.Bytes()
}

// MergeResponse returns the merged pages for FromLevel+1, the refreshed
// level roots, and the new signed global root. OK is false (with Reason)
// when verification failed — which itself flags the edge.
type MergeResponse struct {
	Edge       NodeID
	ReqID      uint64
	OK         bool
	Reason     string
	FromLevel  uint32
	NewPages   []Page
	Roots      [][]byte // all level roots after the merge
	Global     SignedRoot
	ConsumedTo uint64 // for L0 merges: blocks consumed through this id
	CloudSig   []byte
}

// MsgKind implements Message.
func (*MergeResponse) MsgKind() Kind { return KindMergeResponse }

// EncodeTo implements Message.
func (m *MergeResponse) EncodeTo(e *Encoder) {
	m.AppendBody(e)
	e.Blob(m.CloudSig)
}

func (m *MergeResponse) AppendBody(e *Encoder) {
	e.ID(m.Edge)
	e.U64(m.ReqID)
	e.Bool(m.OK)
	e.Str(m.Reason)
	e.U32(m.FromLevel)
	e.U32(uint32(len(m.NewPages)))
	for i := range m.NewPages {
		m.NewPages[i].EncodeTo(e)
	}
	e.U32(uint32(len(m.Roots)))
	for _, r := range m.Roots {
		e.Blob(r)
	}
	m.Global.EncodeTo(e)
	e.U64(m.ConsumedTo)
}

// DecodeFrom implements Message.
func (m *MergeResponse) DecodeFrom(d *Decoder) {
	m.Edge = d.ID()
	m.ReqID = d.U64()
	m.OK = d.Bool()
	m.Reason = d.Str()
	m.FromLevel = d.U32()
	m.NewPages = decodeSlice(d, (*Page).DecodeFrom)
	m.Roots = decodeBlobs(d)
	m.Global.DecodeFrom(d)
	m.ConsumedTo = d.U64()
	m.CloudSig = d.Blob()
}

// SignableBytes returns the bytes the cloud signs.
func (m *MergeResponse) SignableBytes() []byte {
	var e Encoder
	m.AppendBody(&e)
	return e.Bytes()
}
