package wire

// Messages of the WedgeChain logging protocol (Section IV).

// AddRequest asks an edge node to append a signed entry to its log. The
// entry itself carries the client signature, so the request needs none.
type AddRequest struct {
	Entry     Entry
	WantBlock bool // if set, the edge returns the full block in AddResponse
}

// MsgKind implements Message.
func (*AddRequest) MsgKind() Kind { return KindAddRequest }

// EncodeTo implements Message.
func (m *AddRequest) EncodeTo(e *Encoder) {
	m.Entry.EncodeTo(e)
	e.Bool(m.WantBlock)
}

// DecodeFrom implements Message.
func (m *AddRequest) DecodeFrom(d *Decoder) {
	m.Entry.DecodeFrom(d)
	m.WantBlock = d.Bool()
}

// AppendBlockAckBody appends the signable body shared by every block
// acknowledgement (AddResponse, PutResponse, and the block portion of
// ReadResponse): the block id plus the 32-byte block digest. Signing and
// verifying this body is O(1) in block size — the full block still ships
// on the wire, but the signature covers only its digest, which the digest's
// one-way property binds to the contents just as strongly as signing the
// re-encoded body did. Signers use the digest cached at block cut;
// verifiers recompute it from the block they received (Block.BodyDigest),
// so a tampered body fails the signature check exactly as before.
func AppendBlockAckBody(e *Encoder, bid uint64, digest []byte) {
	e.U64(bid)
	e.Blob(digest)
}

// AddResponse is the edge node's signed promise that the client's entry is
// part of block BID. It is the client's Phase I commit evidence: if the
// certified block BID turns out not to contain the entry, this message
// convicts the edge.
type AddResponse struct {
	BID     uint64
	Block   Block // the block containing the entry
	EdgeSig []byte

	encSize int // cached encoded size; see sizeMemoized
}

// MsgKind implements Message.
func (*AddResponse) MsgKind() Kind { return KindAddResponse }

// EncodeTo implements Message.
func (m *AddResponse) EncodeTo(e *Encoder) {
	e.U64(m.BID)
	m.Block.EncodeTo(e)
	e.Blob(m.EdgeSig)
}

// AppendBody appends the signable body: the size-independent block-ack
// body (BID + block digest), not the shipped encoding.
func (m *AddResponse) AppendBody(e *Encoder) {
	AppendBlockAckBody(e, m.BID, m.Block.BodyDigest())
}

// DecodeFrom implements Message.
func (m *AddResponse) DecodeFrom(d *Decoder) {
	m.BID = d.U64()
	m.Block.DecodeFrom(d)
	m.EdgeSig = d.Blob()
	m.encSize = 0
}

// SignableBytes returns the bytes the edge signs.
func (m *AddResponse) SignableBytes() []byte {
	var e Encoder
	m.AppendBody(&e)
	return e.Bytes()
}

func (m *AddResponse) encodedSizeMemo() int { return m.encSize }

func (m *AddResponse) memoizeEncodedSize(n int) {
	if m.Block.frozen() {
		m.encSize = n
	}
}

// BlockCertify is the data-free certification request from edge to cloud:
// only the digest crosses the WAN link, never the block contents. Agreement
// on the digest implies agreement on the block because the digest is a
// one-way hash.
//
// Body is normally empty. The full-data ablation (DESIGN.md A1) sets it to
// the block's canonical bytes, modeling a system without data-free
// certification; the cloud then recomputes and checks the digest.
type BlockCertify struct {
	Edge    NodeID
	BID     uint64
	Digest  []byte
	Body    []byte
	EdgeSig []byte
}

// MsgKind implements Message.
func (*BlockCertify) MsgKind() Kind { return KindBlockCertify }

// EncodeTo implements Message.
func (m *BlockCertify) EncodeTo(e *Encoder) {
	m.AppendBody(e)
	e.Blob(m.EdgeSig)
}

func (m *BlockCertify) AppendBody(e *Encoder) {
	e.ID(m.Edge)
	e.U64(m.BID)
	e.Blob(m.Digest)
	e.Blob(m.Body)
}

// DecodeFrom implements Message.
func (m *BlockCertify) DecodeFrom(d *Decoder) {
	m.Edge = d.ID()
	m.BID = d.U64()
	m.Digest = d.Blob()
	m.Body = d.Blob()
	m.EdgeSig = d.Blob()
}

// SignableBytes returns the bytes the edge signs.
func (m *BlockCertify) SignableBytes() []byte {
	var e Encoder
	m.AppendBody(&e)
	return e.Bytes()
}

// BlockProof is the cloud's signed certification of block BID's digest — the
// Phase II commit certificate. The cloud issues at most one proof per
// (edge, BID); a conflicting certify attempt flags the edge as malicious.
type BlockProof struct {
	Edge     NodeID
	BID      uint64
	Digest   []byte
	CloudSig []byte
}

// MsgKind implements Message.
func (*BlockProof) MsgKind() Kind { return KindBlockProof }

// EncodeTo implements Message.
func (m *BlockProof) EncodeTo(e *Encoder) {
	m.AppendBody(e)
	e.Blob(m.CloudSig)
}

func (m *BlockProof) AppendBody(e *Encoder) {
	e.ID(m.Edge)
	e.U64(m.BID)
	e.Blob(m.Digest)
}

// DecodeFrom implements Message.
func (m *BlockProof) DecodeFrom(d *Decoder) {
	m.Edge = d.ID()
	m.BID = d.U64()
	m.Digest = d.Blob()
	m.CloudSig = d.Blob()
}

// SignableBytes returns the bytes the cloud signs.
func (m *BlockProof) SignableBytes() []byte {
	var e Encoder
	m.AppendBody(&e)
	return e.Bytes()
}

// ReadRequest asks an edge node for block BID.
type ReadRequest struct {
	BID   uint64
	ReqID uint64 // client-local correlation id
}

// MsgKind implements Message.
func (*ReadRequest) MsgKind() Kind { return KindReadRequest }

// EncodeTo implements Message.
func (m *ReadRequest) EncodeTo(e *Encoder) {
	e.U64(m.BID)
	e.U64(m.ReqID)
}

// DecodeFrom implements Message.
func (m *ReadRequest) DecodeFrom(d *Decoder) {
	m.BID = d.U64()
	m.ReqID = d.U64()
}

// ReadResponse returns a block (with or without its Phase II proof) or a
// signed not-available statement. All three cases are signed by the edge so
// any lie is disputable evidence.
type ReadResponse struct {
	ReqID    uint64
	BID      uint64
	OK       bool  // false: block not available (signed denial)
	Ts       int64 // edge timestamp; orders denials against cloud gossip
	Block    Block
	HasProof bool
	Proof    BlockProof // valid only when HasProof
	EdgeSig  []byte

	encSize int // cached encoded size; see sizeMemoized
}

// MsgKind implements Message.
func (*ReadResponse) MsgKind() Kind { return KindReadResponse }

// EncodeTo implements Message.
func (m *ReadResponse) EncodeTo(e *Encoder) {
	e.U64(m.ReqID)
	e.U64(m.BID)
	e.Bool(m.OK)
	e.I64(m.Ts)
	m.Block.EncodeTo(e)
	e.Bool(m.HasProof)
	m.Proof.EncodeTo(e)
	e.Blob(m.EdgeSig)
}

// AppendBody appends the signable body. The block is represented by its
// 32-byte digest (size-independent signing); the small constant-size
// fields — including the attached proof, which is itself digest-sized —
// stay inline.
func (m *ReadResponse) AppendBody(e *Encoder) {
	m.AppendBodyWithDigest(e, m.Block.BodyDigest())
}

// AppendBodyWithDigest appends the signable body using a block digest the
// caller already holds — the edge's read path signs with the digest cached
// at block cut instead of re-hashing the block per read. Verifiers never
// use this entry point: they go through AppendBody, which recomputes the
// digest from the block they received.
func (m *ReadResponse) AppendBodyWithDigest(e *Encoder, digest []byte) {
	e.U64(m.ReqID)
	e.U64(m.BID)
	e.Bool(m.OK)
	e.I64(m.Ts)
	e.Blob(digest)
	e.Bool(m.HasProof)
	m.Proof.EncodeTo(e)
}

// DecodeFrom implements Message.
func (m *ReadResponse) DecodeFrom(d *Decoder) {
	m.ReqID = d.U64()
	m.BID = d.U64()
	m.OK = d.Bool()
	m.Ts = d.I64()
	m.Block.DecodeFrom(d)
	m.HasProof = d.Bool()
	m.Proof.DecodeFrom(d)
	m.EdgeSig = d.Blob()
	m.encSize = 0
}

// SignableBytes returns the bytes the edge signs.
func (m *ReadResponse) SignableBytes() []byte {
	var e Encoder
	m.AppendBody(&e)
	return e.Bytes()
}

func (m *ReadResponse) encodedSizeMemo() int { return m.encSize }

func (m *ReadResponse) memoizeEncodedSize(n int) {
	if m.Block.frozen() {
		m.encSize = n
	}
}

// Gossip is the cloud's periodic signed statement of an edge log's size,
// which lets clients detect omission attacks: any position below LogSize is
// provably filled, so a not-available response for it is disputable.
type Gossip struct {
	Edge     NodeID
	Ts       int64
	LogSize  uint64 // number of certified entries (absolute positions filled)
	Blocks   uint64 // number of certified blocks
	CloudSig []byte
}

// MsgKind implements Message.
func (*Gossip) MsgKind() Kind { return KindGossip }

// EncodeTo implements Message.
func (m *Gossip) EncodeTo(e *Encoder) {
	m.AppendBody(e)
	e.Blob(m.CloudSig)
}

func (m *Gossip) AppendBody(e *Encoder) {
	e.ID(m.Edge)
	e.I64(m.Ts)
	e.U64(m.LogSize)
	e.U64(m.Blocks)
}

// DecodeFrom implements Message.
func (m *Gossip) DecodeFrom(d *Decoder) {
	m.Edge = d.ID()
	m.Ts = d.I64()
	m.LogSize = d.U64()
	m.Blocks = d.U64()
	m.CloudSig = d.Blob()
}

// SignableBytes returns the bytes the cloud signs.
func (m *Gossip) SignableBytes() []byte {
	var e Encoder
	m.AppendBody(&e)
	return e.Bytes()
}

// DisputeKind classifies what the client accuses the edge of.
type DisputeKind uint8

// Dispute kinds.
const (
	// DisputeAddLie: the edge promised the entry is in block BID
	// (AddResponse evidence) but the certified block differs.
	DisputeAddLie DisputeKind = iota + 1
	// DisputeReadLie: the edge served block contents for BID
	// (ReadResponse evidence) that differ from the certified block.
	DisputeReadLie
	// DisputeOmission: the edge denied availability of a position that
	// cloud gossip proves is filled (ReadResponse + Gossip evidence).
	DisputeOmission
	// DisputeGetLie: a get response carried L0 block content for BID
	// that differs from the certified block (GetResponse evidence).
	DisputeGetLie
	// DisputeScanLie: a scan response is provably defective — its signed
	// completeness proof fails structural verification, or it carried L0
	// block content for BID that differs from the certified block
	// (ScanResponse evidence; the cloud re-verifies the whole proof).
	DisputeScanLie
)

// String returns the dispute kind's name.
func (k DisputeKind) String() string {
	switch k {
	case DisputeAddLie:
		return "add-lie"
	case DisputeReadLie:
		return "read-lie"
	case DisputeOmission:
		return "omission"
	case DisputeGetLie:
		return "get-lie"
	case DisputeScanLie:
		return "scan-lie"
	default:
		return "unknown"
	}
}

// Dispute carries a client's accusation with the signed edge response as
// evidence. Evidence is the canonical EncodeMessage bytes of the signed
// AddResponse or ReadResponse, so the cloud can independently verify the
// edge's signature over exactly what the client received.
type Dispute struct {
	Kind      DisputeKind
	Edge      NodeID
	BID       uint64
	Evidence  []byte // EncodeMessage(AddResponse|ReadResponse)
	Evidence2 []byte // omission: EncodeMessage(Gossip) proving the position is filled
	ClientSig []byte
}

// MsgKind implements Message.
func (*Dispute) MsgKind() Kind { return KindDispute }

// EncodeTo implements Message.
func (m *Dispute) EncodeTo(e *Encoder) {
	m.AppendBody(e)
	e.Blob(m.ClientSig)
}

func (m *Dispute) AppendBody(e *Encoder) {
	e.U8(uint8(m.Kind))
	e.ID(m.Edge)
	e.U64(m.BID)
	e.Blob(m.Evidence)
	e.Blob(m.Evidence2)
}

// DecodeFrom implements Message.
func (m *Dispute) DecodeFrom(d *Decoder) {
	m.Kind = DisputeKind(d.U8())
	m.Edge = d.ID()
	m.BID = d.U64()
	m.Evidence = d.Blob()
	m.Evidence2 = d.Blob()
	m.ClientSig = d.Blob()
}

// SignableBytes returns the bytes the client signs.
func (m *Dispute) SignableBytes() []byte {
	var e Encoder
	m.AppendBody(&e)
	return e.Bytes()
}

// Verdict is the cloud's signed ruling on a dispute. Guilty verdicts are
// recorded in the punishment registry and broadcast; punished edges are
// excluded (Section II-D assumption 2: no reentry).
type Verdict struct {
	Edge     NodeID
	BID      uint64
	Kind     DisputeKind
	Guilty   bool
	Reason   string
	CloudSig []byte
}

// MsgKind implements Message.
func (*Verdict) MsgKind() Kind { return KindVerdict }

// EncodeTo implements Message.
func (m *Verdict) EncodeTo(e *Encoder) {
	m.AppendBody(e)
	e.Blob(m.CloudSig)
}

func (m *Verdict) AppendBody(e *Encoder) {
	e.ID(m.Edge)
	e.U64(m.BID)
	e.U8(uint8(m.Kind))
	e.Bool(m.Guilty)
	e.Str(m.Reason)
}

// DecodeFrom implements Message.
func (m *Verdict) DecodeFrom(d *Decoder) {
	m.Edge = d.ID()
	m.BID = d.U64()
	m.Kind = DisputeKind(d.U8())
	m.Guilty = d.Bool()
	m.Reason = d.Str()
	m.CloudSig = d.Blob()
}

// SignableBytes returns the bytes the cloud signs.
func (m *Verdict) SignableBytes() []byte {
	var e Encoder
	m.AppendBody(&e)
	return e.Bytes()
}

// ReserveRequest implements the replay-protection extension of Section IV-E:
// the client reserves Count consecutive log positions, then signs each entry
// for its specific position, making requests idempotent by construction.
type ReserveRequest struct {
	Client    NodeID
	Count     uint32
	ReqID     uint64
	ClientSig []byte
}

// MsgKind implements Message.
func (*ReserveRequest) MsgKind() Kind { return KindReserveRequest }

// EncodeTo implements Message.
func (m *ReserveRequest) EncodeTo(e *Encoder) {
	m.AppendBody(e)
	e.Blob(m.ClientSig)
}

func (m *ReserveRequest) AppendBody(e *Encoder) {
	e.ID(m.Client)
	e.U32(m.Count)
	e.U64(m.ReqID)
}

// DecodeFrom implements Message.
func (m *ReserveRequest) DecodeFrom(d *Decoder) {
	m.Client = d.ID()
	m.Count = d.U32()
	m.ReqID = d.U64()
	m.ClientSig = d.Blob()
}

// SignableBytes returns the bytes the client signs.
func (m *ReserveRequest) SignableBytes() []byte {
	var e Encoder
	m.AppendBody(&e)
	return e.Bytes()
}

// ReserveResponse grants absolute log positions [Start, Start+Count) to the
// client, signed by the edge.
type ReserveResponse struct {
	ReqID   uint64
	Start   uint64
	Count   uint32
	EdgeSig []byte
}

// MsgKind implements Message.
func (*ReserveResponse) MsgKind() Kind { return KindReserveResponse }

// EncodeTo implements Message.
func (m *ReserveResponse) EncodeTo(e *Encoder) {
	m.AppendBody(e)
	e.Blob(m.EdgeSig)
}

func (m *ReserveResponse) AppendBody(e *Encoder) {
	e.U64(m.ReqID)
	e.U64(m.Start)
	e.U32(m.Count)
}

// DecodeFrom implements Message.
func (m *ReserveResponse) DecodeFrom(d *Decoder) {
	m.ReqID = d.U64()
	m.Start = d.U64()
	m.Count = d.U32()
	m.EdgeSig = d.Blob()
}

// SignableBytes returns the bytes the edge signs.
func (m *ReserveResponse) SignableBytes() []byte {
	var e Encoder
	m.AppendBody(&e)
	return e.Bytes()
}
