package wire

// Messages of the replica-group extension: a shard's chain is served by a
// small group of edge nodes — one leader, the rest followers mirroring the
// leader's frozen-block log — and the trusted cloud arbitrates leadership.
// The chain identity (the NodeID blocks, certificates, and gossip are keyed
// by) stays stable across leader changes; only the serving node changes.

// ReplicateBlock ships a frozen block from a shard leader to a follower.
// LeaderSig signs the block-ack body (BID ‖ digest) — byte-for-byte the
// same signable body as AddResponse/PutResponse — so replication is
// Phase I evidence against the leader: a follower that later receives a
// cloud certificate for the same BID with a different digest repackages
// the replicated block and this signature as an AddResponse and files a
// DisputeAddLie, convicting the equivocating leader through the existing
// judge with no new adjudication code.
type ReplicateBlock struct {
	Chain     NodeID // chain (shard) identity the block belongs to
	Leader    NodeID // serving node that cut and signed the block
	Block     Block
	LeaderSig []byte

	encSize int // cached encoded size; see sizeMemoized
}

// MsgKind implements Message.
func (*ReplicateBlock) MsgKind() Kind { return KindReplicateBlock }

// EncodeTo implements Message.
func (m *ReplicateBlock) EncodeTo(e *Encoder) {
	e.ID(m.Chain)
	e.ID(m.Leader)
	m.Block.EncodeTo(e)
	e.Blob(m.LeaderSig)
}

// AppendBody appends the signable body: the size-independent block-ack
// body shared with AddResponse/PutResponse.
func (m *ReplicateBlock) AppendBody(e *Encoder) {
	AppendBlockAckBody(e, m.Block.ID, m.Block.BodyDigest())
}

// DecodeFrom implements Message.
func (m *ReplicateBlock) DecodeFrom(d *Decoder) {
	m.Chain = d.ID()
	m.Leader = d.ID()
	m.Block.DecodeFrom(d)
	m.LeaderSig = d.Blob()
	m.encSize = 0
}

// SignableBytes returns the bytes the leader signs.
func (m *ReplicateBlock) SignableBytes() []byte {
	var e Encoder
	m.AppendBody(&e)
	return e.Bytes()
}

func (m *ReplicateBlock) encodedSizeMemo() int { return m.encSize }

func (m *ReplicateBlock) memoizeEncodedSize(n int) {
	if m.Block.frozen() {
		m.encSize = n
	}
}

// ReplicaHeartbeat is a replica's periodic signed liveness and progress
// report to the cloud: how much of the chain's log it holds (Blocks) and
// how far its certified prefix extends (Certified, the count of leading
// blocks with cloud certificates). The cloud uses leader heartbeats for
// lease-based crash detection and follower heartbeats to pick the
// promotion candidate with the longest certified prefix — safe precisely
// because lazy trust makes the certified frontier the durable prefix.
type ReplicaHeartbeat struct {
	Node      NodeID // reporting replica
	Chain     NodeID // chain it serves
	Blocks    uint64 // frozen blocks held (mirrored or self-cut)
	Certified uint64 // length of the certified prefix (blocks 0..Certified-1)
	Ts        int64
	Sig       []byte
}

// MsgKind implements Message.
func (*ReplicaHeartbeat) MsgKind() Kind { return KindReplicaHeartbeat }

// EncodeTo implements Message.
func (m *ReplicaHeartbeat) EncodeTo(e *Encoder) {
	m.AppendBody(e)
	e.Blob(m.Sig)
}

func (m *ReplicaHeartbeat) AppendBody(e *Encoder) {
	e.ID(m.Node)
	e.ID(m.Chain)
	e.U64(m.Blocks)
	e.U64(m.Certified)
	e.I64(m.Ts)
}

// DecodeFrom implements Message.
func (m *ReplicaHeartbeat) DecodeFrom(d *Decoder) {
	m.Node = d.ID()
	m.Chain = d.ID()
	m.Blocks = d.U64()
	m.Certified = d.U64()
	m.Ts = d.I64()
	m.Sig = d.Blob()
}

// SignableBytes returns the bytes the replica signs.
func (m *ReplicaHeartbeat) SignableBytes() []byte {
	var e Encoder
	m.AppendBody(&e)
	return e.Bytes()
}

// LeadershipTransfer is the cloud's signed record that chain leadership
// moved to a new node: the arbitration artifact of a failover. Epoch
// strictly increases per chain, so every replica and client can order
// transfers and ignore stale ones. Clients that verify CloudSig rebind
// their session to NewLeader and resend in-flight operations; the old
// leader's signed promises remain convicting evidence against it.
type LeadershipTransfer struct {
	Chain     NodeID // chain whose leadership changed
	Epoch     uint64 // per-chain leadership epoch (initial leader is epoch 1)
	Prev      NodeID // demoted node
	NewLeader NodeID
	Followers []NodeID // remaining followers under the new leader
	Reason    string   // "crash", "conviction", "cert-timeout", ...
	Ts        int64
	CloudSig  []byte
}

// MsgKind implements Message.
func (*LeadershipTransfer) MsgKind() Kind { return KindLeadershipTransfer }

// EncodeTo implements Message.
func (m *LeadershipTransfer) EncodeTo(e *Encoder) {
	m.AppendBody(e)
	e.Blob(m.CloudSig)
}

func (m *LeadershipTransfer) AppendBody(e *Encoder) {
	e.ID(m.Chain)
	e.U64(m.Epoch)
	e.ID(m.Prev)
	e.ID(m.NewLeader)
	e.U32(uint32(len(m.Followers)))
	for _, id := range m.Followers {
		e.ID(id)
	}
	e.Str(m.Reason)
	e.I64(m.Ts)
}

// DecodeFrom implements Message.
func (m *LeadershipTransfer) DecodeFrom(d *Decoder) {
	m.Chain = d.ID()
	m.Epoch = d.U64()
	m.Prev = d.ID()
	m.NewLeader = d.ID()
	n := d.Count()
	if d.Err() == nil && n > 0 {
		m.Followers = make([]NodeID, n)
		for i := range m.Followers {
			m.Followers[i] = d.ID()
		}
	}
	m.Reason = d.Str()
	m.Ts = d.I64()
	m.CloudSig = d.Blob()
}

// SignableBytes returns the bytes the cloud signs.
func (m *LeadershipTransfer) SignableBytes() []byte {
	var e Encoder
	m.AppendBody(&e)
	return e.Bytes()
}
