package wire

// Messages of the verified range-scan protocol: multi-key reads over the
// LSMerkle index with completeness proofs. A scan response does not carry a
// result list at all — it carries evidence (L0 blocks, per-level page-range
// proofs, signed roots) from which the client *derives* the result, so the
// edge cannot contradict its own proof, only present a defective one; a
// defective signed proof is self-incriminating dispute evidence.

// ScanRequest asks an edge for every certified key-value pair in the
// half-open key range [Start, End). Nil Start means -infinity; nil End
// means +infinity. Limit is a client-side truncation hint: the edge still
// proves the full range (completeness is not negotiable), and the client
// truncates the derived result.
type ScanRequest struct {
	Start []byte
	End   []byte
	Limit uint32
	ReqID uint64
}

// MsgKind implements Message.
func (*ScanRequest) MsgKind() Kind { return KindScanRequest }

// EncodeTo implements Message.
func (m *ScanRequest) EncodeTo(e *Encoder) {
	e.OptBlob(m.Start)
	e.OptBlob(m.End)
	e.U32(m.Limit)
	e.U64(m.ReqID)
}

// DecodeFrom implements Message.
func (m *ScanRequest) DecodeFrom(d *Decoder) {
	m.Start = d.OptBlob()
	m.End = d.OptBlob()
	m.Limit = d.U32()
	m.ReqID = d.U64()
}

// LevelRangeProof proves that Pages is exactly the contiguous run of
// pages at leaf positions [First, First+len(Pages)) of a Width-leaf level
// tree: the pages themselves plus the left and right flank sibling paths
// of one multi-leaf Merkle range proof (merkle.VerifyRange). Because every
// page leaf commits the page's [Lo, Hi) bounds, a verified run whose first
// page contains the scan's start and whose last page covers its end proves
// no certified entry in between was omitted.
type LevelRangeProof struct {
	Level uint32
	First uint32 // leaf index of Pages[0] in the level tree
	Width uint32 // total leaves in the level tree
	Pages []Page
	Left  [][]byte // left flank sibling hashes, bottom-up
	Right [][]byte // right flank sibling hashes, bottom-up
}

// EncodeTo appends the proof's canonical encoding.
func (lp *LevelRangeProof) EncodeTo(e *Encoder) {
	e.U32(lp.Level)
	e.U32(lp.First)
	e.U32(lp.Width)
	e.U32(uint32(len(lp.Pages)))
	for i := range lp.Pages {
		lp.Pages[i].EncodeTo(e)
	}
	e.U32(uint32(len(lp.Left)))
	for _, h := range lp.Left {
		e.Blob(h)
	}
	e.U32(uint32(len(lp.Right)))
	for _, h := range lp.Right {
		e.Blob(h)
	}
}

// DecodeFrom reads the proof.
func (lp *LevelRangeProof) DecodeFrom(d *Decoder) {
	lp.Level = d.U32()
	lp.First = d.U32()
	lp.Width = d.U32()
	lp.Pages = decodeSlice(d, (*Page).DecodeFrom)
	lp.Left = decodeBlobs(d)
	lp.Right = decodeBlobs(d)
}

// ScanProof is the complete evidence attached to a scan response:
//
//   - every uncompacted L0 page (block) that might overlap the range,
//     with its Phase II certificate where available (missing certificates
//     put the scan in Phase I);
//   - a pruned reference (digest-committed key summary, no entries) for
//     every window block whose summary provably excludes the range, so
//     the window stays contiguous without re-shipping irrelevant blocks;
//   - for each non-empty level, one page-range proof covering every page
//     that overlaps [Start, End), including the boundary pages whose
//     committed bounds prove completeness at both ends;
//   - all level roots, so the client can recompute the global root;
//   - the cloud-signed global root with its freshness timestamp.
type ScanProof struct {
	L0Blocks      []Block
	L0Certs       []BlockProof // aligned with L0Blocks; empty CloudSig = uncertified
	L0Pruned      []PrunedBlock
	L0PrunedCerts []BlockProof // aligned with L0Pruned; empty CloudSig = uncertified
	Levels        []LevelRangeProof
	Roots         [][]byte // level roots 1..n in order
	Global        SignedRoot
}

// EncodeTo appends the proof's canonical encoding.
func (sp *ScanProof) EncodeTo(e *Encoder) {
	e.U32(uint32(len(sp.L0Blocks)))
	for i := range sp.L0Blocks {
		sp.L0Blocks[i].EncodeTo(e)
	}
	e.U32(uint32(len(sp.L0Certs)))
	for i := range sp.L0Certs {
		sp.L0Certs[i].EncodeTo(e)
	}
	appendPrunedWindow(e, sp.L0Pruned, sp.L0PrunedCerts)
	e.U32(uint32(len(sp.Levels)))
	for i := range sp.Levels {
		sp.Levels[i].EncodeTo(e)
	}
	e.U32(uint32(len(sp.Roots)))
	for _, r := range sp.Roots {
		e.Blob(r)
	}
	sp.Global.EncodeTo(e)
}

// AppendSignable appends the proof's signable form, in which every L0
// block — full or pruned — is represented by its 32-byte digest instead
// of its body: the same size-independent signing scheme the block
// acknowledgements use. The full and pruned digest sections are distinct,
// so the signature binds the representation, not just the content (see
// GetProof.AppendSignable). digests supplies the per-block digests in
// L0Blocks order (the edge's cut-time cache); nil recomputes each from
// the block fields, which is what verifiers must do so a poisoned cache
// can never satisfy the check.
func (sp *ScanProof) AppendSignable(e *Encoder, digests [][]byte) {
	appendL0Digests(e, sp.L0Blocks, digests)
	e.U32(uint32(len(sp.L0Certs)))
	for i := range sp.L0Certs {
		sp.L0Certs[i].EncodeTo(e)
	}
	appendPrunedSignable(e, sp.L0Pruned, sp.L0PrunedCerts)
	e.U32(uint32(len(sp.Levels)))
	for i := range sp.Levels {
		sp.Levels[i].EncodeTo(e)
	}
	e.U32(uint32(len(sp.Roots)))
	for _, r := range sp.Roots {
		e.Blob(r)
	}
	sp.Global.EncodeTo(e)
}

// appendL0Digests appends the digest list standing in for L0 block bodies
// inside signable bodies (shared by GetProof and ScanProof).
func appendL0Digests(e *Encoder, blocks []Block, digests [][]byte) {
	e.U32(uint32(len(blocks)))
	for i := range blocks {
		if digests != nil {
			e.Blob(digests[i])
		} else {
			e.Blob(blocks[i].BodyDigest())
		}
	}
}

// appendPrunedWindow appends the wire encoding of a proof's pruned window
// section (shared by GetProof and ScanProof).
func appendPrunedWindow(e *Encoder, pruned []PrunedBlock, certs []BlockProof) {
	e.U32(uint32(len(pruned)))
	for i := range pruned {
		pruned[i].EncodeTo(e)
	}
	e.U32(uint32(len(certs)))
	for i := range certs {
		certs[i].EncodeTo(e)
	}
}

// appendPrunedSignable appends the signable form of a proof's pruned
// window: each reference stood in by its recomputed claimed digest (the
// preimage hash is a few dozen bytes — no caching needed), followed by
// the aligned certificates.
func appendPrunedSignable(e *Encoder, pruned []PrunedBlock, certs []BlockProof) {
	e.U32(uint32(len(pruned)))
	for i := range pruned {
		e.Blob(pruned[i].Digest())
	}
	e.U32(uint32(len(certs)))
	for i := range certs {
		certs[i].EncodeTo(e)
	}
}

// DecodeFrom reads the proof.
func (sp *ScanProof) DecodeFrom(d *Decoder) {
	sp.L0Blocks = decodeSlice(d, (*Block).DecodeFrom)
	sp.L0Certs = decodeSlice(d, (*BlockProof).DecodeFrom)
	sp.L0Pruned = decodeSlice(d, (*PrunedBlock).DecodeFrom)
	sp.L0PrunedCerts = decodeSlice(d, (*BlockProof).DecodeFrom)
	sp.Levels = decodeSlice(d, (*LevelRangeProof).DecodeFrom)
	sp.Roots = decodeBlobs(d)
	sp.Global.DecodeFrom(d)
}

// ScanResponse answers a ScanRequest with the full ScanProof. Start and
// End echo the request bounds under the edge's signature, making the
// response self-contained dispute evidence: the cloud can re-verify the
// whole proof against the signed bounds without ever seeing the request.
type ScanResponse struct {
	ReqID   uint64
	Start   []byte
	End     []byte
	Proof   ScanProof
	EdgeSig []byte

	encSize int // cached encoded size; see sizeMemoized
}

// MsgKind implements Message.
func (*ScanResponse) MsgKind() Kind { return KindScanResponse }

// EncodeTo implements Message.
func (m *ScanResponse) EncodeTo(e *Encoder) {
	e.U64(m.ReqID)
	e.OptBlob(m.Start)
	e.OptBlob(m.End)
	m.Proof.EncodeTo(e)
	e.Blob(m.EdgeSig)
}

// AppendBody appends the signable body, with L0 blocks represented by
// recomputed digests (size-independent signing; see ScanProof.AppendSignable).
func (m *ScanResponse) AppendBody(e *Encoder) {
	m.AppendBodyWithDigests(e, nil)
}

// AppendBodyWithDigests appends the signable body using L0 digests the
// caller already holds — the edge's hot path, where every served block's
// digest was cached at block cut. Verifiers never use this entry point.
func (m *ScanResponse) AppendBodyWithDigests(e *Encoder, digests [][]byte) {
	e.U64(m.ReqID)
	e.OptBlob(m.Start)
	e.OptBlob(m.End)
	m.Proof.AppendSignable(e, digests)
}

// DecodeFrom implements Message.
func (m *ScanResponse) DecodeFrom(d *Decoder) {
	m.ReqID = d.U64()
	m.Start = d.OptBlob()
	m.End = d.OptBlob()
	m.Proof.DecodeFrom(d)
	m.EdgeSig = d.Blob()
	m.encSize = 0
}

// SignableBytes returns the bytes the edge signs.
func (m *ScanResponse) SignableBytes() []byte {
	var e Encoder
	m.AppendBody(&e)
	return e.Bytes()
}

func (m *ScanResponse) encodedSizeMemo() int { return m.encSize }

func (m *ScanResponse) memoizeEncodedSize(n int) {
	for i := range m.Proof.L0Blocks {
		if !m.Proof.L0Blocks[i].frozen() {
			return
		}
	}
	m.encSize = n
}
