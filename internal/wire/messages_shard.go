package wire

// ShardMap is the cluster's authoritative keyspace partition: shard i of
// len(Edges) is owned by Edges[i], and a key routes to the shard selected
// by the stable partitioner in internal/shard. The cloud signs the map so
// clients can verify their routing table came from the trusted party
// rather than from an edge steering traffic toward itself. Version is
// carried for future reconfiguration support; today a cluster signs a
// single version-1 map at assembly and clients do not compare versions.
type ShardMap struct {
	Version  uint64
	Edges    []NodeID
	CloudSig []byte
}

// MsgKind implements Message.
func (*ShardMap) MsgKind() Kind { return KindShardMap }

// EncodeTo implements Message.
func (m *ShardMap) EncodeTo(e *Encoder) {
	m.AppendBody(e)
	e.Blob(m.CloudSig)
}

func (m *ShardMap) AppendBody(e *Encoder) {
	e.U64(m.Version)
	e.U32(uint32(len(m.Edges)))
	for _, id := range m.Edges {
		e.ID(id)
	}
}

// DecodeFrom implements Message.
func (m *ShardMap) DecodeFrom(d *Decoder) {
	m.Version = d.U64()
	n := d.Count()
	if d.Err() == nil && n > 0 {
		m.Edges = make([]NodeID, n)
		for i := range m.Edges {
			m.Edges[i] = d.ID()
		}
	}
	m.CloudSig = d.Blob()
}

// SignableBytes returns the bytes the cloud signs.
func (m *ShardMap) SignableBytes() []byte {
	var e Encoder
	m.AppendBody(&e)
	return e.Bytes()
}
