package wire

// ShardMap is the cluster's authoritative keyspace partition and replica
// topology: shard i of len(Edges) is the chain whose current leader is
// Edges[i], and Followers[i] (aligned with Edges, possibly empty) lists
// the nodes mirroring that chain's log. A key routes to the shard selected
// by the stable partitioner in internal/shard. The cloud signs the map so
// clients can verify their routing table came from the trusted party
// rather than from an edge steering traffic toward itself.
//
// Version identifies the partition itself (shard count and chain
// membership); Epoch counts leadership changes — the cloud re-signs the
// map with a higher Epoch after every LeadershipTransfer, and receivers
// ignore any map whose Epoch is not newer than the one they hold.
type ShardMap struct {
	Version   uint64
	Epoch     uint64
	Edges     []NodeID
	Followers [][]NodeID // Followers[i] mirror the chain led by Edges[i]
	CloudSig  []byte
}

// MsgKind implements Message.
func (*ShardMap) MsgKind() Kind { return KindShardMap }

// EncodeTo implements Message.
func (m *ShardMap) EncodeTo(e *Encoder) {
	m.AppendBody(e)
	e.Blob(m.CloudSig)
}

func (m *ShardMap) AppendBody(e *Encoder) {
	e.U64(m.Version)
	e.U64(m.Epoch)
	e.U32(uint32(len(m.Edges)))
	for _, id := range m.Edges {
		e.ID(id)
	}
	e.U32(uint32(len(m.Followers)))
	for _, fs := range m.Followers {
		e.U32(uint32(len(fs)))
		for _, id := range fs {
			e.ID(id)
		}
	}
}

// DecodeFrom implements Message.
func (m *ShardMap) DecodeFrom(d *Decoder) {
	m.Version = d.U64()
	m.Epoch = d.U64()
	n := d.Count()
	if d.Err() == nil && n > 0 {
		m.Edges = make([]NodeID, n)
		for i := range m.Edges {
			m.Edges[i] = d.ID()
		}
	}
	n = d.Count()
	if d.Err() == nil && n > 0 {
		m.Followers = make([][]NodeID, n)
		for i := range m.Followers {
			k := d.Count()
			if d.Err() != nil {
				return
			}
			if k > 0 {
				m.Followers[i] = make([]NodeID, k)
				for j := range m.Followers[i] {
					m.Followers[i][j] = d.ID()
				}
			}
		}
	}
	m.CloudSig = d.Blob()
}

// SignableBytes returns the bytes the cloud signs.
func (m *ShardMap) SignableBytes() []byte {
	var e Encoder
	m.AppendBody(&e)
	return e.Bytes()
}
