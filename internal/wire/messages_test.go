package wire

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

// rnd builds deterministic pseudo-random test inputs.
var rnd = rand.New(rand.NewSource(42))

func randBytes(n int) []byte {
	b := make([]byte, n)
	rnd.Read(b)
	return b
}

func sampleEntry(i int) Entry {
	return Entry{
		Client: NodeID("client-" + string(rune('a'+i%3))),
		Seq:    uint64(i),
		Key:    randBytes(8),
		Value:  randBytes(32),
		Ts:     int64(1000 + i),
		Pos:    uint64(i * 7),
		Sig:    randBytes(64),
	}
}

func sampleBlock() Block {
	b := Block{Edge: "edge-1", ID: 12, StartPos: 1200, Ts: 999}
	for i := 0; i < 5; i++ {
		b.Entries = append(b.Entries, sampleEntry(i))
	}
	return b
}

func samplePruned(id uint64) PrunedBlock {
	return PrunedBlock{
		Edge:        "edge-1",
		ID:          id,
		StartPos:    id * 100,
		Ts:          888,
		EntriesHash: randBytes(32),
		Summary: BlockSummary{
			Keys:   3,
			MinKey: []byte("aaa"),
			MaxKey: []byte("zzz"),
			Fps:    []uint32{7, 9, 4000000000},
		},
	}
}

func samplePage(level uint32) Page {
	p := Page{
		Level: level,
		Seq:   77,
		Lo:    []byte("aaa"),
		Hi:    []byte("mmm"),
		Ts:    5555,
	}
	for i := 0; i < 4; i++ {
		p.KVs = append(p.KVs, KV{Key: randBytes(6), Value: randBytes(20), Ver: uint64(i)})
	}
	return p
}

// sampleMessages returns one populated instance of every message kind.
func sampleMessages() []Message {
	blk := sampleBlock()
	proof := BlockProof{Edge: "edge-1", BID: 12, Digest: randBytes(32), CloudSig: randBytes(64)}
	global := SignedRoot{Edge: "edge-1", Epoch: 3, Root: randBytes(32), Ts: 123, CloudSig: randBytes(64)}
	return []Message{
		&AddRequest{Entry: sampleEntry(1), WantBlock: true},
		&AddResponse{BID: 12, Block: blk, EdgeSig: randBytes(64)},
		&BlockCertify{Edge: "edge-1", BID: 12, Digest: randBytes(32), EdgeSig: randBytes(64)},
		&proof,
		&ReadRequest{BID: 12, ReqID: 9},
		&ReadResponse{ReqID: 9, BID: 12, OK: true, Ts: 77, Block: blk, HasProof: true, Proof: proof, EdgeSig: randBytes(64)},
		&Gossip{Edge: "edge-1", Ts: 50, LogSize: 900, Blocks: 9, CloudSig: randBytes(64)},
		&Dispute{Kind: DisputeAddLie, Edge: "edge-1", BID: 12, Evidence: randBytes(100), Evidence2: randBytes(40), ClientSig: randBytes(64)},
		&Verdict{Edge: "edge-1", BID: 12, Kind: DisputeReadLie, Guilty: true, Reason: "digest mismatch", CloudSig: randBytes(64)},
		&ReserveRequest{Client: "client-a", Count: 4, ReqID: 2, ClientSig: randBytes(64)},
		&ReserveResponse{ReqID: 2, Start: 40, Count: 4, EdgeSig: randBytes(64)},
		&PutRequest{Entry: sampleEntry(2)},
		&PutResponse{BID: 13, Block: blk, EdgeSig: randBytes(64)},
		&GetRequest{Key: []byte("k"), ReqID: 4},
		&GetResponse{
			ReqID: 4, Key: []byte("k"), Found: true, Value: randBytes(10), Ver: 2,
			Proof: GetProof{
				L0Blocks:      []Block{blk},
				L0Certs:       []BlockProof{proof},
				L0Pruned:      []PrunedBlock{samplePruned(13)},
				L0PrunedCerts: []BlockProof{{}},
				Levels: []LevelProof{{
					Level: 1, Page: samplePage(1), Index: 2, Width: 4,
					Path: [][]byte{randBytes(32), randBytes(32)},
				}},
				Roots:  [][]byte{randBytes(32), randBytes(32)},
				Global: global,
			},
			EdgeSig: randBytes(64),
		},
		&MergeRequest{
			Edge: "edge-1", ReqID: 1, FromLevel: 0,
			L0Blocks: []Block{blk},
			SrcPages: nil,
			DstPages: []Page{samplePage(1)},
			EdgeSig:  randBytes(64),
		},
		&MergeResponse{
			Edge: "edge-1", ReqID: 1, OK: true, FromLevel: 0,
			NewPages:   []Page{samplePage(1), samplePage(1)},
			Roots:      [][]byte{randBytes(32)},
			Global:     global,
			ConsumedTo: 12,
			CloudSig:   randBytes(64),
		},
		&CloudPutRequest{Entry: sampleEntry(3)},
		&CloudPutResponse{BID: 5, OK: true},
		&CloudGetRequest{Key: []byte("k2"), ReqID: 6},
		&CloudGetResponse{ReqID: 6, Found: false},
		&EBPutRequest{Entry: sampleEntry(4), Edge: "edge-2"},
		&EBPutResponse{BID: 7, OK: true},
		&EBStatePush{
			Epoch: 2, Block: blk, Proof: proof,
			Pages:  []Page{samplePage(2)},
			Roots:  [][]byte{randBytes(32), randBytes(32)},
			Global: global, CloudSig: randBytes(64),
		},
		&EBStateAck{Epoch: 2, EdgeSig: randBytes(64)},
		&Ping{Seq: 1, Ts: 2},
		&Pong{Seq: 1, Ts: 2},
		&PutBatch{Client: "client-a", Entries: []Entry{sampleEntry(5), sampleEntry(6)}, BatchSig: randBytes(64)},
		&CloudPutBatch{Entries: []Entry{sampleEntry(7)}},
		&EBPutBatch{Edge: "edge-2", Entries: []Entry{sampleEntry(8), sampleEntry(9)}},
		&ShardMap{
			Version: 1, Epoch: 4,
			Edges:     []NodeID{"edge-1", "edge-2", "edge-3"},
			Followers: [][]NodeID{{"edge-1.r1", "edge-1.r2"}, nil, {"edge-3.r1"}},
			CloudSig:  randBytes(64),
		},
		&ScanRequest{Start: []byte("a"), End: []byte("m"), Limit: 50, ReqID: 11},
		&ScanResponse{
			ReqID: 11, Start: []byte("a"), End: nil,
			Proof: ScanProof{
				L0Blocks:      []Block{blk},
				L0Certs:       []BlockProof{proof},
				L0Pruned:      []PrunedBlock{samplePruned(13), samplePruned(14)},
				L0PrunedCerts: []BlockProof{proof, {}},
				Levels: []LevelRangeProof{{
					Level: 1, First: 2, Width: 9,
					Pages: []Page{samplePage(1), samplePage(1)},
					Left:  [][]byte{randBytes(32)},
					Right: [][]byte{randBytes(32), randBytes(32)},
				}},
				Roots:  [][]byte{randBytes(32), randBytes(32)},
				Global: global,
			},
			EdgeSig: randBytes(64),
		},
		&ReplicateBlock{Chain: "edge-1", Leader: "edge-1.r1", Block: blk, LeaderSig: randBytes(64)},
		&ReplicaHeartbeat{Node: "edge-1.r2", Chain: "edge-1", Blocks: 14, Certified: 12, Ts: 321, Sig: randBytes(64)},
		&LeadershipTransfer{
			Chain: "edge-1", Epoch: 2, Prev: "edge-1", NewLeader: "edge-1.r1",
			Followers: []NodeID{"edge-1.r2"}, Reason: "crash", Ts: 456, CloudSig: randBytes(64),
		},
		&CatchUpRequest{Chain: "edge-1", Node: "edge-1.r2", From: 7, Ts: 99, Sig: randBytes(64)},
		&CatchUpBlocks{
			Chain: "edge-1", Leader: "edge-1.r1", From: 7, Through: 9,
			Items: []CatchUpItem{
				{Block: blk, ServerSig: randBytes(64), HasCert: true, Cert: proof},
				{Block: blk, ServerSig: randBytes(64)},
			},
		},
		&GroupJoin{Chain: "edge-1", Node: "edge-1.r2", Leader: "edge-1.r1", Epoch: 3, Ts: 17, CloudSig: randBytes(64)},
		&FrontierRequest{Chain: "edge-1"},
		&Overloaded{Seq: 42, ReqID: 7, RetryAfter: 1e8, Backlog: 9, EdgeSig: randBytes(64)},
		&BlockCertifyBatch{
			Edge: "edge-1", Start: 12,
			Digests: [][]byte{randBytes(32), randBytes(32), randBytes(32)},
			EdgeSig: randBytes(64),
		},
		&BlockCertBatch{
			Edge: "edge-1", Start: 12,
			Digests:  [][]byte{randBytes(32), randBytes(32), randBytes(32)},
			CloudSig: randBytes(64),
		},
	}
}

// TestEveryMessageRoundTrips checks decode(encode(m)) == m and that the
// encoding is canonical (re-encoding is byte-identical) for every message
// kind in the protocol.
func TestEveryMessageRoundTrips(t *testing.T) {
	msgs := sampleMessages()
	seen := map[Kind]bool{}
	for _, m := range msgs {
		seen[m.MsgKind()] = true
		env := Envelope{From: "a", To: "b", Msg: m}
		enc := EncodeEnvelope(env)
		got, err := DecodeEnvelope(enc)
		if err != nil {
			t.Fatalf("%v: decode: %v", m.MsgKind(), err)
		}
		if got.From != "a" || got.To != "b" {
			t.Errorf("%v: routing lost: %+v", m.MsgKind(), got)
		}
		if !reflect.DeepEqual(got.Msg, m) {
			t.Errorf("%v: round trip mismatch:\n got %#v\nwant %#v", m.MsgKind(), got.Msg, m)
		}
		re := EncodeEnvelope(got)
		if !bytes.Equal(re, enc) {
			t.Errorf("%v: encoding not canonical", m.MsgKind())
		}
	}
	// Every kind in the registry must be covered by this test.
	for k := KindInvalid + 1; k < kindEnd; k++ {
		if !seen[k] {
			t.Errorf("kind %v has no round-trip coverage", k)
		}
	}
}

func TestDecodeEnvelopeRejectsUnknownKind(t *testing.T) {
	var e Encoder
	e.U16(9999)
	e.ID("a")
	e.ID("b")
	if _, err := DecodeEnvelope(e.Bytes()); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestDecodeEnvelopeRejectsTrailing(t *testing.T) {
	enc := EncodeEnvelope(Envelope{From: "a", To: "b", Msg: &Ping{Seq: 1}})
	enc = append(enc, 0x00)
	if _, err := DecodeEnvelope(enc); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestDecodeEnvelopeRejectsTruncation(t *testing.T) {
	enc := EncodeEnvelope(Envelope{From: "a", To: "b", Msg: &AddResponse{BID: 1, Block: sampleBlock()}})
	for cut := 1; cut < len(enc); cut += 7 {
		if _, err := DecodeEnvelope(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestSignableBytesExcludeSignature(t *testing.T) {
	m1 := &BlockCertify{Edge: "e", BID: 1, Digest: []byte{1, 2}, EdgeSig: []byte{9}}
	m2 := &BlockCertify{Edge: "e", BID: 1, Digest: []byte{1, 2}, EdgeSig: []byte{8, 8, 8}}
	if !bytes.Equal(m1.SignableBytes(), m2.SignableBytes()) {
		t.Fatal("SignableBytes depends on signature")
	}
	m3 := &BlockCertify{Edge: "e", BID: 2, Digest: []byte{1, 2}}
	if bytes.Equal(m1.SignableBytes(), m3.SignableBytes()) {
		t.Fatal("SignableBytes ignores BID")
	}
}

func TestPageContains(t *testing.T) {
	cases := []struct {
		lo, hi []byte
		key    []byte
		want   bool
	}{
		{nil, nil, []byte("anything"), true},
		{[]byte("b"), []byte("d"), []byte("b"), true},
		{[]byte("b"), []byte("d"), []byte("c"), true},
		{[]byte("b"), []byte("d"), []byte("d"), false}, // exclusive hi
		{[]byte("b"), []byte("d"), []byte("a"), false},
		{nil, []byte("d"), []byte("a"), true},
		{[]byte("b"), nil, []byte("zzz"), true},
		{[]byte("b"), nil, []byte("a"), false},
	}
	for _, c := range cases {
		p := Page{Lo: c.lo, Hi: c.hi}
		if got := p.Contains(c.key); got != c.want {
			t.Errorf("Contains(%q) in [%q,%q) = %v, want %v", c.key, c.lo, c.hi, got, c.want)
		}
	}
}

func TestEntryEqual(t *testing.T) {
	a := sampleEntry(1)
	b := a
	if !a.Equal(&b) {
		t.Fatal("identical entries not equal")
	}
	b.Value = append([]byte{}, a.Value...)
	b.Value[0] ^= 1
	if a.Equal(&b) {
		t.Fatal("differing entries equal")
	}
}

func TestBlockCanonicalStable(t *testing.T) {
	b := sampleBlock()
	if !bytes.Equal(b.Canonical(), b.Canonical()) {
		t.Fatal("Canonical not deterministic")
	}
	b2 := b
	b2.ID++
	if bytes.Equal(b.Canonical(), b2.Canonical()) {
		t.Fatal("Canonical ignores block id")
	}
}

func TestMessageSizeAccounting(t *testing.T) {
	small := Envelope{From: "a", To: "b", Msg: &BlockCertify{Edge: "e", BID: 1, Digest: randBytes(32), EdgeSig: randBytes(64)}}
	big := Envelope{From: "a", To: "b", Msg: &AddResponse{BID: 1, Block: sampleBlock(), EdgeSig: randBytes(64)}}
	if Size(small) >= Size(big) {
		t.Fatalf("digest-only certify (%d B) should be smaller than block response (%d B)",
			Size(small), Size(big))
	}
}
