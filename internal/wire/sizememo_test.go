package wire

import "testing"

// recount returns the envelope size through the non-memoized path.
func recount(env Envelope) int {
	e := Encoder{counting: true}
	appendEnvelope(&e, env)
	return e.n
}

// TestEncodedSizeMemoMatchesRecount pins the memo's correctness: for every
// memoizing message kind, the first (computing) call, the second (memoized)
// call and a from-scratch recount must agree, frozen or not.
func TestEncodedSizeMemoMatchesRecount(t *testing.T) {
	frozen := sampleBlock()
	frozen.Freeze()
	proof := BlockProof{Edge: "edge-1", BID: 12, Digest: randBytes(32), CloudSig: randBytes(64)}
	msgs := []Message{
		&AddResponse{BID: 12, Block: frozen, EdgeSig: randBytes(64)},
		&PutResponse{BID: 12, Block: frozen, EdgeSig: randBytes(64)},
		&ReadResponse{ReqID: 1, BID: 12, OK: true, Block: frozen, HasProof: true, Proof: proof, EdgeSig: randBytes(64)},
		&GetResponse{ReqID: 1, Found: true, Value: randBytes(10), Ver: 2,
			Proof: GetProof{L0Blocks: []Block{frozen}, L0Certs: []BlockProof{proof}}, EdgeSig: randBytes(64)},
		&ScanResponse{ReqID: 1, Start: []byte("a"), End: []byte("z"),
			Proof: ScanProof{L0Blocks: []Block{frozen}, L0Certs: []BlockProof{proof}}, EdgeSig: randBytes(64)},
	}
	for _, m := range msgs {
		env := Envelope{From: "edge-1", To: "c1", Msg: m}
		want := recount(env)
		if got := EncodedSize(env); got != want {
			t.Errorf("%v: first EncodedSize = %d, recount = %d", m.MsgKind(), got, want)
		}
		if got := EncodedSize(env); got != want {
			t.Errorf("%v: memoized EncodedSize = %d, recount = %d", m.MsgKind(), got, want)
		}
		if mm := m.(sizeMemoized); mm.encodedSizeMemo() == 0 {
			t.Errorf("%v: frozen-block message did not memoize", m.MsgKind())
		}
		// Different routing header, same memoized body.
		env2 := Envelope{From: "edge-longer-name", To: "c1", Msg: m}
		if got, want := EncodedSize(env2), recount(env2); got != want {
			t.Errorf("%v: memo ignored header size: got %d want %d", m.MsgKind(), got, want)
		}
	}
}

// TestEncodedSizeMemoRefusesUnfrozen pins the immutability gate: a message
// whose block is not frozen — e.g. a fault path that Invalidated it before
// tampering — must keep recounting, so a later mutation can never be
// served a stale size.
func TestEncodedSizeMemoRefusesUnfrozen(t *testing.T) {
	m := &AddResponse{BID: 12, Block: sampleBlock(), EdgeSig: randBytes(64)}
	env := Envelope{From: "edge-1", To: "c1", Msg: m}
	before := EncodedSize(env)
	if m.encodedSizeMemo() != 0 {
		t.Fatal("unfrozen block message memoized its size")
	}
	m.Block.Entries = append(m.Block.Entries, sampleEntry(9))
	if after := EncodedSize(env); after <= before {
		t.Fatalf("size did not track mutation: before %d after %d", before, after)
	}
}

// TestEncodedSizeMemoResetOnDecode pins that decoding reuses no memo from
// a previous life of the struct.
func TestEncodedSizeMemoResetOnDecode(t *testing.T) {
	frozen := sampleBlock()
	frozen.Freeze()
	m := &AddResponse{BID: 12, Block: frozen, EdgeSig: randBytes(64)}
	EncodedSize(Envelope{From: "a", To: "b", Msg: m})
	if m.encodedSizeMemo() == 0 {
		t.Fatal("setup: memo not populated")
	}
	enc := EncodeEnvelope(Envelope{From: "a", To: "b", Msg: m})
	got, err := DecodeEnvelope(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Msg.(*AddResponse).encodedSizeMemo() != 0 {
		t.Fatal("decode left a stale size memo")
	}
}

// BenchmarkEncodedSizeFrozenMemo measures the simulator's per-message size
// charge for a frozen block acknowledgement with the memo warm — the term
// the discrete-event sim pays on every send.
func BenchmarkEncodedSizeFrozenMemo(b *testing.B) {
	blk := sampleBlock()
	blk.Freeze()
	env := Envelope{From: "edge-1", To: "c1", Msg: &AddResponse{BID: 12, Block: blk, EdgeSig: randBytes(64)}}
	EncodedSize(env) // warm the memo
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sizeSink = EncodedSize(env)
	}
}

// BenchmarkEncodedSizeFrozenRecount is the same charge through the
// recounting path (memo cold on every call), for comparison.
func BenchmarkEncodedSizeFrozenRecount(b *testing.B) {
	blk := sampleBlock()
	blk.Freeze()
	m := &AddResponse{BID: 12, Block: blk, EdgeSig: randBytes(64)}
	env := Envelope{From: "edge-1", To: "c1", Msg: m}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.encSize = 0
		sizeSink = EncodedSize(env)
	}
}

var sizeSink int
