package wire

// Block key summaries and pruned block references — the evidence-pruning
// vocabulary of the read protocol.
//
// Every block digest commits, besides the entries, a small summary of the
// keys the block writes: the sorted [MinKey, MaxKey] interval plus a set
// of per-key fingerprints. Because the digest is what certification and
// the block acknowledgements sign, the summary inherits their integrity:
// an edge that commits a summary contradicting its own entries produces a
// digest that no honest recomputation matches, which the existing lazy
// machinery (write acks, merge shipping, dispute adjudication) convicts.
//
// A read response may then replace any L0 block whose summary provably
// excludes the requested key or range with a PrunedBlock — the digest
// preimage minus the entries. Verifiers rebind the pruned fields to the
// certified (or pinned) digest and check the exclusion themselves, so the
// edge saves the bandwidth without gaining any new way to lie.

import (
	"bytes"
	"crypto/sha256"
	"slices"
	"sort"
)

// BlockSummary is the key summary committed under a block's digest: how
// many keyed entries the block holds, the smallest and largest key, and
// the sorted, deduplicated 32-bit fingerprint of every key. Blocks with
// Keys == 0 (pure log records, reservation no-ops) write no key at all.
//
// The summary is a pure function of the block's entries
// (ComputeBlockSummary); it is never an independent field of Block, so
// there is nothing to keep consistent — a digest either derives from the
// entries or it is somebody's lie.
type BlockSummary struct {
	Keys   uint32 // number of keyed entries summarized
	MinKey []byte // smallest key; nil when Keys == 0
	MaxKey []byte // largest key; nil when Keys == 0
	Fps    []uint32
}

// KeyFingerprint maps a key to its 32-bit summary fingerprint (FNV-1a,
// the same non-cryptographic hash the shard partitioner uses). The
// fingerprint needs no cryptographic strength: exclusion soundness rests
// on the digest committing the honestly derived set — an edge cannot
// remove a present key's fingerprint without changing the digest — and a
// collision merely costs a pruning opportunity (the block ships in full),
// never a wrong exclusion. Runs on every block-digest recompute, so it
// must stay cheap.
func KeyFingerprint(key []byte) uint32 {
	const offset32, prime32 = 2166136261, 16777619
	h := uint32(offset32)
	for _, b := range key {
		h ^= uint32(b)
		h *= prime32
	}
	return h
}

// ComputeBlockSummary derives the key summary from a block's entries. The
// result is canonical: fingerprints sorted ascending and deduplicated, so
// two honest parties always derive byte-identical summaries (and hence
// digests) from the same entries.
func ComputeBlockSummary(entries []Entry) BlockSummary {
	s := BlockSummary{Fps: make([]uint32, 0, len(entries))}
	for i := range entries {
		k := entries[i].Key
		if len(k) == 0 {
			continue
		}
		if s.Keys == 0 || bytes.Compare(k, s.MinKey) < 0 {
			s.MinKey = k
		}
		if s.Keys == 0 || bytes.Compare(k, s.MaxKey) > 0 {
			s.MaxKey = k
		}
		s.Keys++
		s.Fps = append(s.Fps, KeyFingerprint(k))
	}
	if len(s.Fps) > 1 {
		slices.Sort(s.Fps)
		s.Fps = slices.Compact(s.Fps)
	}
	if len(s.Fps) == 0 {
		s.Fps = nil
	}
	return s
}

// AppendTo appends the summary's canonical encoding — shared by the block
// digest preimage and the PrunedBlock wire encoding, which is exactly what
// lets a verifier rebind a shipped summary to a digest.
func (s *BlockSummary) AppendTo(e *Encoder) {
	e.U32(s.Keys)
	e.OptBlob(s.MinKey)
	e.OptBlob(s.MaxKey)
	e.U32(uint32(len(s.Fps)))
	for _, fp := range s.Fps {
		e.U32(fp)
	}
}

// DecodeFrom reads the summary.
func (s *BlockSummary) DecodeFrom(d *Decoder) {
	s.Keys = d.U32()
	s.MinKey = d.OptBlob()
	s.MaxKey = d.OptBlob()
	n := d.Count()
	s.Fps = nil
	for i := 0; i < n; i++ {
		s.Fps = append(s.Fps, d.U32())
	}
}

// ExcludesKey reports whether a block carrying this summary provably
// cannot contain key: the block writes no keys at all, the key falls
// outside the committed [MinKey, MaxKey] interval, or its fingerprint is
// absent from the committed set. Sound for honestly derived summaries —
// and a dishonest summary never survives the digest binding.
func (s *BlockSummary) ExcludesKey(key []byte) bool {
	if s.Keys == 0 {
		return true
	}
	if bytes.Compare(key, s.MinKey) < 0 || bytes.Compare(key, s.MaxKey) > 0 {
		return true
	}
	fp := KeyFingerprint(key)
	i := sort.Search(len(s.Fps), func(i int) bool { return s.Fps[i] >= fp })
	return i >= len(s.Fps) || s.Fps[i] != fp
}

// ExcludesRange reports whether a block carrying this summary provably
// cannot contain any key of the half-open range [start, end) — the block
// writes no keys, or its committed key interval is disjoint from the
// range (nil start/end mean ±infinity). Fingerprints cannot prove range
// emptiness, so only the interval is consulted.
func (s *BlockSummary) ExcludesRange(start, end []byte) bool {
	if s.Keys == 0 {
		return true
	}
	if end != nil && bytes.Compare(s.MinKey, end) >= 0 {
		return true
	}
	if start != nil && bytes.Compare(s.MaxKey, start) < 0 {
		return true
	}
	return false
}

// PrunedBlock stands in for an L0 block a read response excluded: the
// digest preimage without the entries. Verifiers recompute the block
// digest from these fields alone (Digest) and bind it to the certificate
// shipped alongside — or pin it against the later block proof — exactly
// as they would a full block, then check that Summary excludes what was
// asked. A summary tampered on the wire recomputes to a digest nothing
// certifies; a truthful summary that fails to exclude is an unsound prune;
// both defects convict the signing edge.
type PrunedBlock struct {
	Edge        NodeID
	ID          uint64
	StartPos    uint64
	Ts          int64
	EntriesHash []byte // SHA-256 of the entries' canonical encoding
	Summary     BlockSummary
}

// EncodeTo appends the pruned reference's canonical encoding.
func (pb *PrunedBlock) EncodeTo(e *Encoder) {
	e.ID(pb.Edge)
	e.U64(pb.ID)
	e.U64(pb.StartPos)
	e.I64(pb.Ts)
	e.Blob(pb.EntriesHash)
	pb.Summary.AppendTo(e)
}

// DecodeFrom reads the pruned reference.
func (pb *PrunedBlock) DecodeFrom(d *Decoder) {
	pb.Edge = d.ID()
	pb.ID = d.U64()
	pb.StartPos = d.U64()
	pb.Ts = d.I64()
	pb.EntriesHash = d.Blob()
	pb.Summary.DecodeFrom(d)
}

// Digest recomputes the block digest this pruned reference claims: the
// same preimage a full block hashes to, assembled from the shipped fields.
// Equality with a certified digest proves the summary (and the exclusion
// it licenses) was committed at block cut.
func (pb *PrunedBlock) Digest() []byte {
	e := GetEncoder()
	appendBlockDigestPreimage(e, pb.Edge, pb.ID, pb.StartPos, pb.Ts, &pb.Summary, pb.EntriesHash)
	sum := sha256.Sum256(e.Bytes())
	PutEncoder(e)
	return sum[:]
}

// PruneBlock builds the pruned reference for a block, reusing the summary
// and entries hash cached at Freeze when available (the edge's serve path)
// and deriving them from the entries otherwise.
func PruneBlock(b *Block) PrunedBlock {
	s, eh, ok := b.FrozenSummary()
	if !ok {
		s = ComputeBlockSummary(b.Entries)
		eh = b.computeEntriesHash()
	}
	return PrunedBlock{
		Edge:        b.Edge,
		ID:          b.ID,
		StartPos:    b.StartPos,
		Ts:          b.Ts,
		EntriesHash: eh,
		Summary:     s,
	}
}

// appendBlockDigestPreimage appends the block digest preimage: header
// fields, the key summary, and the hash of the encoded entries. Full
// blocks derive the summary and entries hash from their entries; pruned
// references carry them explicitly. The split is what makes the digest
// recomputable without the entries — the property pruning rests on.
func appendBlockDigestPreimage(e *Encoder, edge NodeID, id, startPos uint64, ts int64, s *BlockSummary, entriesHash []byte) {
	e.ID(edge)
	e.U64(id)
	e.U64(startPos)
	e.I64(ts)
	s.AppendTo(e)
	e.Blob(entriesHash)
}
