package wire

import (
	"bytes"
	"fmt"
	"testing"
)

func keyedEntry(i int, key string) Entry {
	return Entry{Client: "c1", Seq: uint64(i), Key: []byte(key), Value: []byte("v"), Sig: randBytes(64)}
}

func TestComputeBlockSummary(t *testing.T) {
	entries := []Entry{
		keyedEntry(1, "mango"),
		{Client: "c1", Seq: 2, Value: []byte("pure log entry")}, // no key
		keyedEntry(3, "apple"),
		keyedEntry(4, "zebra"),
		keyedEntry(5, "apple"), // duplicate key
	}
	s := ComputeBlockSummary(entries)
	if s.Keys != 4 {
		t.Fatalf("Keys = %d, want 4", s.Keys)
	}
	if string(s.MinKey) != "apple" || string(s.MaxKey) != "zebra" {
		t.Fatalf("interval = [%q, %q]", s.MinKey, s.MaxKey)
	}
	if len(s.Fps) != 3 { // apple deduped
		t.Fatalf("fps = %v", s.Fps)
	}
	for i := 1; i < len(s.Fps); i++ {
		if s.Fps[i-1] >= s.Fps[i] {
			t.Fatalf("fps not strictly sorted: %v", s.Fps)
		}
	}

	// Exclusion: present keys never excluded; keys outside the interval
	// and keys with absent fingerprints are.
	for _, k := range []string{"apple", "mango", "zebra"} {
		if s.ExcludesKey([]byte(k)) {
			t.Fatalf("present key %q excluded", k)
		}
	}
	if !s.ExcludesKey([]byte("aaaa")) || !s.ExcludesKey([]byte("zz")) {
		t.Fatal("out-of-interval key not excluded")
	}
	if !s.ExcludesKey([]byte("mungo")) {
		t.Fatal("in-interval absent-fingerprint key not excluded")
	}

	// Range exclusion uses the interval only.
	if !s.ExcludesRange([]byte("zebraa"), nil) || !s.ExcludesRange(nil, []byte("appl")) {
		t.Fatal("disjoint range not excluded")
	}
	if s.ExcludesRange([]byte("m"), []byte("n")) {
		t.Fatal("overlapping range excluded")
	}
	if s.ExcludesRange(nil, nil) {
		t.Fatal("infinite range excluded")
	}
}

func TestKeylessBlockSummaryExcludesEverything(t *testing.T) {
	s := ComputeBlockSummary([]Entry{{Client: "c1", Seq: 1, Value: []byte("log")}})
	if !s.ExcludesKey([]byte("anything")) || !s.ExcludesRange(nil, nil) {
		t.Fatal("keyless block should exclude every key and range")
	}
}

// TestPrunedDigestMatchesBlockDigest pins the commitment split: the
// digest recomputed from a pruned reference's fields equals the digest
// recomputed from the full block — the identity pruning rests on.
func TestPrunedDigestMatchesBlockDigest(t *testing.T) {
	blk := sampleBlock()
	pb := PruneBlock(&blk)
	if !bytes.Equal(pb.Digest(), blk.BodyDigest()) {
		t.Fatal("pruned digest != full block digest")
	}

	// Frozen and unfrozen derivations agree.
	frozen := blk
	frozen.Freeze()
	pf := PruneBlock(&frozen)
	if !bytes.Equal(pf.Digest(), blk.BodyDigest()) {
		t.Fatal("frozen-cache pruned digest diverges")
	}

	// Any tampering of the pruned fields changes the claimed digest.
	mutations := []func(*PrunedBlock){
		func(p *PrunedBlock) { p.ID++ },
		func(p *PrunedBlock) { p.StartPos++ },
		func(p *PrunedBlock) { p.Ts++ },
		func(p *PrunedBlock) { p.EntriesHash[0] ^= 1 },
		func(p *PrunedBlock) { p.Summary.Keys++ },
		func(p *PrunedBlock) { p.Summary.MinKey = []byte("earlier") },
		func(p *PrunedBlock) { p.Summary.Fps = p.Summary.Fps[1:] },
	}
	for i, mut := range mutations {
		cp := PruneBlock(&blk)
		cp.EntriesHash = append([]byte(nil), cp.EntriesHash...)
		cp.Summary.Fps = append([]uint32(nil), cp.Summary.Fps...)
		mut(&cp)
		if bytes.Equal(cp.Digest(), blk.BodyDigest()) {
			t.Fatalf("mutation %d did not change the claimed digest", i)
		}
	}
}

// TestBlockDigestCommitsSummary pins that two blocks differing only in
// entry KEYS produce different digests even when their entry count and
// sizes agree — the summary is inside the preimage, so committing a
// digest commits the summary.
func TestBlockDigestCommitsSummary(t *testing.T) {
	a := Block{Edge: "e", ID: 1, StartPos: 10, Ts: 5, Entries: []Entry{keyedEntry(1, "aaa")}}
	b := Block{Edge: "e", ID: 1, StartPos: 10, Ts: 5, Entries: []Entry{keyedEntry(1, "bbb")}}
	if bytes.Equal(a.BodyDigest(), b.BodyDigest()) {
		t.Fatal("digest does not separate different keys")
	}
}

func TestSummaryRoundTrip(t *testing.T) {
	var entries []Entry
	for i := 0; i < 10; i++ {
		entries = append(entries, keyedEntry(i, fmt.Sprintf("key-%03d", i*i)))
	}
	for _, s := range []BlockSummary{
		ComputeBlockSummary(entries),
		{}, // keyless
	} {
		var e Encoder
		s.AppendTo(&e)
		var got BlockSummary
		d := NewDecoder(e.Bytes())
		got.DecodeFrom(d)
		if err := d.Finish(); err != nil {
			t.Fatal(err)
		}
		if got.Keys != s.Keys || !bytes.Equal(got.MinKey, s.MinKey) || !bytes.Equal(got.MaxKey, s.MaxKey) || len(got.Fps) != len(s.Fps) {
			t.Fatalf("round trip mismatch: %+v vs %+v", got, s)
		}
	}
}
