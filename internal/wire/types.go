package wire

import (
	"bytes"
	"crypto/sha256"
)

// Entry is a single client-proposed datum: a log record for add() or a
// key-value write for put(). Clients sign entries; edges and the cloud
// verify the signature before accepting, which yields the paper's validity
// guarantee (every logged entry was proposed by an authenticated client).
type Entry struct {
	Client NodeID // authenticated producer
	Seq    uint64 // client-local sequence number (idempotence / replay defence)
	Key    []byte // nil for pure log entries; the key for put()
	Value  []byte // payload
	Ts     int64  // client timestamp, virtual nanoseconds
	Pos    uint64 // reserved absolute log position + 1; 0 = unreserved
	Sig    []byte // client signature over SignableBytes
}

// EncodeTo appends the entry's canonical encoding including the signature.
func (en *Entry) EncodeTo(e *Encoder) {
	en.AppendBody(e)
	e.Blob(en.Sig)
}

func (en *Entry) AppendBody(e *Encoder) {
	e.ID(en.Client)
	e.U64(en.Seq)
	e.Blob(en.Key)
	e.Blob(en.Value)
	e.I64(en.Ts)
	e.U64(en.Pos)
}

// DecodeFrom reads the entry.
func (en *Entry) DecodeFrom(d *Decoder) {
	en.Client = d.ID()
	en.Seq = d.U64()
	en.Key = d.Blob()
	en.Value = d.Blob()
	en.Ts = d.I64()
	en.Pos = d.U64()
	en.Sig = d.Blob()
}

// SignableBytes returns the bytes the client signs: everything except the
// signature itself.
func (en *Entry) SignableBytes() []byte {
	var e Encoder
	en.AppendBody(&e)
	return e.Bytes()
}

// Equal reports whether two entries are identical, including signatures.
func (en *Entry) Equal(o *Entry) bool {
	return en.Client == o.Client && en.Seq == o.Seq &&
		bytes.Equal(en.Key, o.Key) && bytes.Equal(en.Value, o.Value) &&
		en.Ts == o.Ts && en.Pos == o.Pos && bytes.Equal(en.Sig, o.Sig)
}

// Block is a batch of entries appended to an edge node's log. Block IDs are
// unique monotonic numbers per edge node (not globally unique). StartPos is
// the absolute log position of the first entry, supporting the reservation
// extension and gossip-based omission detection.
type Block struct {
	Edge     NodeID
	ID       uint64
	StartPos uint64
	Ts       int64 // edge timestamp at block cut
	Entries  []Entry

	// cache holds the block's canonical encoding, digest, key summary
	// and entries hash, populated only by an explicit Freeze — the
	// block-cut path calls it exactly once, before the block is shared.
	// Frozen blocks are immutable by contract; struct copies share the
	// cache, and the rare code that mutates a frozen copy (fault
	// injection) must call Invalidate first. Unfrozen blocks never
	// cache, so the idiomatic copy-then-mutate pattern stays safe.
	cache *blockCache
}

type blockCache struct {
	canon       []byte
	digest      []byte
	summary     BlockSummary
	entriesHash []byte
}

// EncodeTo appends the block's canonical encoding, serving cached bytes
// when Canonical has been computed.
func (b *Block) EncodeTo(e *Encoder) {
	if b.cache != nil && b.cache.canon != nil {
		e.Raw(b.cache.canon)
		return
	}
	b.EncodeToUncached(e)
}

// EncodeToUncached appends the block's canonical encoding recomputed from
// its fields, bypassing the cache. Verification paths that judge blocks
// received from other nodes use it: in-process transports move blocks by
// reference, so a stale or adversarial cache must never be able to
// satisfy a digest check.
func (b *Block) EncodeToUncached(e *Encoder) {
	e.ID(b.Edge)
	e.U64(b.ID)
	e.U64(b.StartPos)
	e.I64(b.Ts)
	e.U32(uint32(len(b.Entries)))
	for i := range b.Entries {
		b.Entries[i].EncodeTo(e)
	}
}

// DecodeFrom reads the block.
func (b *Block) DecodeFrom(d *Decoder) {
	b.Edge = d.ID()
	b.ID = d.U64()
	b.StartPos = d.U64()
	b.Ts = d.I64()
	b.Entries = decodeSlice(d, (*Entry).DecodeFrom)
	b.cache = nil
}

// Canonical returns the block's canonical encoding — the wire and persist
// format. The block digest is NOT the hash of these bytes: it hashes the
// digest preimage (BodyDigest), which additionally commits the key summary
// and splits out the entries hash so pruned references can rebind to it.
// Frozen blocks return the cached encoding; unfrozen blocks recompute on
// every call.
func (b *Block) Canonical() []byte {
	if b.cache != nil && b.cache.canon != nil {
		return b.cache.canon
	}
	var e Encoder
	b.EncodeToUncached(&e)
	return e.Bytes()
}

// Freeze computes and caches the block's canonical encoding, key
// summary, entries hash and digest. The caller asserts the block will
// never be mutated again: the log calls it exactly once when a block is
// cut (or restored), after which digest, persist, certification,
// response encoding and read pruning all reuse the same derivations —
// BlockDigest finds the digest already cached and nothing on the cut
// path hashes the entries twice.
func (b *Block) Freeze() {
	if b.cache != nil && b.cache.canon != nil {
		return
	}
	var e Encoder
	b.EncodeToUncached(&e)
	c := &blockCache{
		canon:       e.Bytes(),
		summary:     ComputeBlockSummary(b.Entries),
		entriesHash: b.computeEntriesHash(),
	}
	pe := GetEncoder()
	appendBlockDigestPreimage(pe, b.Edge, b.ID, b.StartPos, b.Ts, &c.summary, c.entriesHash)
	sum := sha256.Sum256(pe.Bytes())
	PutEncoder(pe)
	c.digest = sum[:]
	b.cache = c
}

// computeEntriesHash hashes the entries' canonical encoding (count plus
// each entry) — the entries half of the block digest preimage.
func (b *Block) computeEntriesHash() []byte {
	e := GetEncoder()
	e.U32(uint32(len(b.Entries)))
	for i := range b.Entries {
		b.Entries[i].EncodeTo(e)
	}
	sum := sha256.Sum256(e.Bytes())
	PutEncoder(e)
	return sum[:]
}

// BodyDigest returns the block's digest recomputed from its fields: the
// SHA-256 of the digest preimage — header fields, the key summary derived
// from the entries, and the hash of the encoded entries. Splitting the
// preimage this way keeps the digest recomputable from a PrunedBlock's
// fields alone, which is what lets read responses replace excluded blocks
// with their summaries without weakening the digest's bite.
//
// It never consults the frozen cache: signable bodies embed this digest,
// and a signature check must bind to the bytes the verifier actually
// holds — in-process transports move blocks by reference, so a cache
// populated by the sending node proves nothing. Signers that already hold
// the cut-time digest avoid the recompute via AppendBlockAckBody with the
// cached digest (the two agree for any block whose cache is honest).
func (b *Block) BodyDigest() []byte {
	s := ComputeBlockSummary(b.Entries)
	eh := b.computeEntriesHash()
	e := GetEncoder()
	appendBlockDigestPreimage(e, b.Edge, b.ID, b.StartPos, b.Ts, &s, eh)
	sum := sha256.Sum256(e.Bytes())
	PutEncoder(e)
	return sum[:]
}

// FrozenSummary returns the key summary and entries hash cached at
// Freeze, or ok == false for an unfrozen block. The edge's serve paths
// use it to price pruning decisions and pruned references at a lookup;
// verification paths must derive from the entries instead (a cache that
// travelled with the block proves nothing).
func (b *Block) FrozenSummary() (s BlockSummary, entriesHash []byte, ok bool) {
	if b.cache == nil || b.cache.entriesHash == nil {
		return BlockSummary{}, nil, false
	}
	return b.cache.summary, b.cache.entriesHash, true
}

// CachedDigest returns the block's cached digest, or nil if none has been
// recorded. Hashing stays in internal/wcrypto; this is only the cache.
func (b *Block) CachedDigest() []byte {
	if b.cache == nil {
		return nil
	}
	return b.cache.digest
}

// SetCachedDigest records the digest of the block's canonical encoding.
// It sticks only on frozen blocks — an unfrozen block may still be
// mutated, and a cached digest would go stale with it.
func (b *Block) SetCachedDigest(d []byte) {
	if b.cache == nil || b.cache.canon == nil {
		return
	}
	b.cache.digest = d
}

// Invalidate drops the cached encoding and digest, un-freezing the block.
// Any code that mutates a frozen copy's fields must call it first, or
// stale bytes would be served.
func (b *Block) Invalidate() { b.cache = nil }

// frozen reports whether the block carries a cached canonical encoding —
// the immutability contract gate for encoded-size memoization.
func (b *Block) frozen() bool { return b.cache != nil && b.cache.canon != nil }

// KV is one key-version-value record inside an LSMerkle page. Ver orders
// versions of the same key: higher wins.
type KV struct {
	Key   []byte
	Value []byte
	Ver   uint64
}

// EncodeTo appends the record's canonical encoding.
func (kv *KV) EncodeTo(e *Encoder) {
	e.Blob(kv.Key)
	e.Blob(kv.Value)
	e.U64(kv.Ver)
}

// DecodeFrom reads the record.
func (kv *KV) DecodeFrom(d *Decoder) {
	kv.Key = d.Blob()
	kv.Value = d.Blob()
	kv.Ver = d.U64()
}

// Page is an LSMerkle page at level >= 1: a sorted run of KV records
// covering the half-open key range [Lo, Hi). Lo == nil means -infinity and
// Hi == nil means +infinity. Consecutive pages in a level satisfy
// prev.Hi == next.Lo, so the level's pages partition the keyspace — the
// contiguity invariant clients use to verify non-existence proofs.
type Page struct {
	Level uint32
	Seq   uint64 // unique page number assigned by the cloud at merge time
	Lo    []byte // inclusive lower bound; nil = -infinity
	Hi    []byte // exclusive upper bound; nil = +infinity
	Ts    int64  // cloud timestamp of the merge that created the page
	KVs   []KV
}

// EncodeTo appends the page's canonical encoding.
func (p *Page) EncodeTo(e *Encoder) {
	e.U32(p.Level)
	e.U64(p.Seq)
	e.OptBlob(p.Lo)
	e.OptBlob(p.Hi)
	e.I64(p.Ts)
	e.U32(uint32(len(p.KVs)))
	for i := range p.KVs {
		p.KVs[i].EncodeTo(e)
	}
}

// DecodeFrom reads the page.
func (p *Page) DecodeFrom(d *Decoder) {
	p.Level = d.U32()
	p.Seq = d.U64()
	p.Lo = d.OptBlob()
	p.Hi = d.OptBlob()
	p.Ts = d.I64()
	p.KVs = decodeSlice(d, (*KV).DecodeFrom)
}

// Canonical returns the page's canonical encoding, the preimage of the
// page hash used as a Merkle leaf component.
func (p *Page) Canonical() []byte {
	var e Encoder
	p.EncodeTo(&e)
	return e.Bytes()
}

// Contains reports whether key falls in the page's half-open range.
func (p *Page) Contains(key []byte) bool {
	if p.Lo != nil && bytes.Compare(key, p.Lo) < 0 {
		return false
	}
	if p.Hi != nil && bytes.Compare(key, p.Hi) >= 0 {
		return false
	}
	return true
}

// SignedRoot is the cloud-signed commitment to an edge's entire LSMerkle
// index: the global root (hash over all level roots), an epoch counter that
// increments on every merge, a cloud timestamp enabling the freshness
// window check of Section V-D, and the compaction frontier — the first
// block id NOT yet merged into the levels. Committing the frontier is what
// lets read verifiers demand that a served L0 window *start* exactly where
// the signed index state ends: without it, an edge could silently drop the
// oldest certified-but-uncompacted blocks and still present a valid-looking
// completeness proof.
type SignedRoot struct {
	Edge     NodeID
	Epoch    uint64
	Root     []byte
	Ts       int64
	L0From   uint64 // first uncompacted block id at signing time
	CloudSig []byte
}

// EncodeTo appends the signed root including the signature.
func (r *SignedRoot) EncodeTo(e *Encoder) {
	r.AppendBody(e)
	e.Blob(r.CloudSig)
}

func (r *SignedRoot) AppendBody(e *Encoder) {
	e.ID(r.Edge)
	e.U64(r.Epoch)
	e.Blob(r.Root)
	e.I64(r.Ts)
	e.U64(r.L0From)
}

// DecodeFrom reads the signed root.
func (r *SignedRoot) DecodeFrom(d *Decoder) {
	r.Edge = d.ID()
	r.Epoch = d.U64()
	r.Root = d.Blob()
	r.Ts = d.I64()
	r.L0From = d.U64()
	r.CloudSig = d.Blob()
}

// SignableBytes returns the bytes the cloud signs.
func (r *SignedRoot) SignableBytes() []byte {
	var e Encoder
	r.AppendBody(&e)
	return e.Bytes()
}
