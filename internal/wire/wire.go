package wire

import (
	"fmt"
)

// NodeID identifies a participant: a client, an edge node, or the cloud
// node. Identities are public, known, and bound to signing keys in the key
// registry — the premise that makes lazy certification's "detect and punish"
// model enforceable.
type NodeID string

// Kind discriminates message types on the wire.
type Kind uint16

// Message kinds. Values are part of the wire format; append only.
const (
	KindInvalid Kind = iota

	// Logging protocol (Section IV).
	KindAddRequest
	KindAddResponse
	KindBlockCertify
	KindBlockProof
	KindReadRequest
	KindReadResponse
	KindGossip
	KindDispute
	KindVerdict
	KindReserveRequest
	KindReserveResponse

	// LSMerkle key-value protocol (Section V).
	KindPutRequest
	KindPutResponse
	KindGetRequest
	KindGetResponse
	KindMergeRequest
	KindMergeResponse

	// Baselines (Section II-C / VI).
	KindCloudPutRequest
	KindCloudPutResponse
	KindCloudGetRequest
	KindCloudGetResponse
	KindEBPutRequest
	KindEBPutResponse
	KindEBStatePush
	KindEBStateAck

	// Measurement.
	KindPing
	KindPong

	// Batched writes (appended; values are part of the wire format).
	KindPutBatch
	KindCloudPutBatch
	KindEBPutBatch

	// Keyspace sharding (appended).
	KindShardMap

	// Verified range scans (appended).
	KindScanRequest
	KindScanResponse

	// Replica groups and cloud-arbitrated failover (appended).
	KindReplicateBlock
	KindReplicaHeartbeat
	KindLeadershipTransfer

	// Chaos recovery and certified catch-up (appended).
	KindCatchUpRequest
	KindCatchUpBlocks
	KindGroupJoin
	KindFrontierRequest

	// Front-door admission control (appended).
	KindOverloaded

	// Batched certification (appended): one signature covers a
	// contiguous run of block digests, in each direction.
	KindBlockCertifyBatch
	KindBlockCertBatch

	kindEnd // sentinel; keep last
)

var kindNames = map[Kind]string{
	KindAddRequest:       "AddRequest",
	KindAddResponse:      "AddResponse",
	KindBlockCertify:     "BlockCertify",
	KindBlockProof:       "BlockProof",
	KindReadRequest:      "ReadRequest",
	KindReadResponse:     "ReadResponse",
	KindGossip:           "Gossip",
	KindDispute:          "Dispute",
	KindVerdict:          "Verdict",
	KindReserveRequest:   "ReserveRequest",
	KindReserveResponse:  "ReserveResponse",
	KindPutRequest:       "PutRequest",
	KindPutResponse:      "PutResponse",
	KindGetRequest:       "GetRequest",
	KindGetResponse:      "GetResponse",
	KindMergeRequest:     "MergeRequest",
	KindMergeResponse:    "MergeResponse",
	KindCloudPutRequest:  "CloudPutRequest",
	KindCloudPutResponse: "CloudPutResponse",
	KindCloudGetRequest:  "CloudGetRequest",
	KindCloudGetResponse: "CloudGetResponse",
	KindEBPutRequest:     "EBPutRequest",
	KindEBPutResponse:    "EBPutResponse",
	KindEBStatePush:      "EBStatePush",
	KindEBStateAck:       "EBStateAck",
	KindPing:             "Ping",
	KindPong:             "Pong",
	KindPutBatch:         "PutBatch",
	KindCloudPutBatch:    "CloudPutBatch",
	KindEBPutBatch:       "EBPutBatch",
	KindShardMap:         "ShardMap",
	KindScanRequest:      "ScanRequest",
	KindScanResponse:     "ScanResponse",

	KindReplicateBlock:     "ReplicateBlock",
	KindReplicaHeartbeat:   "ReplicaHeartbeat",
	KindLeadershipTransfer: "LeadershipTransfer",

	KindCatchUpRequest:  "CatchUpRequest",
	KindCatchUpBlocks:   "CatchUpBlocks",
	KindGroupJoin:       "GroupJoin",
	KindFrontierRequest: "FrontierRequest",

	KindOverloaded: "Overloaded",

	KindBlockCertifyBatch: "BlockCertifyBatch",
	KindBlockCertBatch:    "BlockCertBatch",
}

// String returns the human-readable name of the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint16(k))
}

// BodyAppender is implemented by signed messages (and entries) that can
// append their signable body — everything except the signature — to an
// existing encoder. Signing and verification use it to reuse pooled
// buffers instead of allocating a fresh one per SignableBytes call.
type BodyAppender interface {
	AppendBody(e *Encoder)
}

// Message is any protocol message with a canonical encoding.
type Message interface {
	// MsgKind identifies the concrete type on the wire.
	MsgKind() Kind
	// EncodeTo appends the message's canonical encoding.
	EncodeTo(e *Encoder)
	// DecodeFrom reads the message from d; errors surface via d.Err.
	DecodeFrom(d *Decoder)
}

// newMessage constructs an empty message of the given kind for decoding.
func newMessage(k Kind) (Message, error) {
	switch k {
	case KindAddRequest:
		return &AddRequest{}, nil
	case KindAddResponse:
		return &AddResponse{}, nil
	case KindBlockCertify:
		return &BlockCertify{}, nil
	case KindBlockProof:
		return &BlockProof{}, nil
	case KindReadRequest:
		return &ReadRequest{}, nil
	case KindReadResponse:
		return &ReadResponse{}, nil
	case KindGossip:
		return &Gossip{}, nil
	case KindDispute:
		return &Dispute{}, nil
	case KindVerdict:
		return &Verdict{}, nil
	case KindReserveRequest:
		return &ReserveRequest{}, nil
	case KindReserveResponse:
		return &ReserveResponse{}, nil
	case KindPutRequest:
		return &PutRequest{}, nil
	case KindPutResponse:
		return &PutResponse{}, nil
	case KindGetRequest:
		return &GetRequest{}, nil
	case KindGetResponse:
		return &GetResponse{}, nil
	case KindMergeRequest:
		return &MergeRequest{}, nil
	case KindMergeResponse:
		return &MergeResponse{}, nil
	case KindCloudPutRequest:
		return &CloudPutRequest{}, nil
	case KindCloudPutResponse:
		return &CloudPutResponse{}, nil
	case KindCloudGetRequest:
		return &CloudGetRequest{}, nil
	case KindCloudGetResponse:
		return &CloudGetResponse{}, nil
	case KindEBPutRequest:
		return &EBPutRequest{}, nil
	case KindEBPutResponse:
		return &EBPutResponse{}, nil
	case KindEBStatePush:
		return &EBStatePush{}, nil
	case KindEBStateAck:
		return &EBStateAck{}, nil
	case KindPing:
		return &Ping{}, nil
	case KindPong:
		return &Pong{}, nil
	case KindPutBatch:
		return &PutBatch{}, nil
	case KindCloudPutBatch:
		return &CloudPutBatch{}, nil
	case KindEBPutBatch:
		return &EBPutBatch{}, nil
	case KindShardMap:
		return &ShardMap{}, nil
	case KindScanRequest:
		return &ScanRequest{}, nil
	case KindScanResponse:
		return &ScanResponse{}, nil
	case KindReplicateBlock:
		return &ReplicateBlock{}, nil
	case KindReplicaHeartbeat:
		return &ReplicaHeartbeat{}, nil
	case KindLeadershipTransfer:
		return &LeadershipTransfer{}, nil
	case KindCatchUpRequest:
		return &CatchUpRequest{}, nil
	case KindCatchUpBlocks:
		return &CatchUpBlocks{}, nil
	case KindGroupJoin:
		return &GroupJoin{}, nil
	case KindFrontierRequest:
		return &FrontierRequest{}, nil
	case KindOverloaded:
		return &Overloaded{}, nil
	case KindBlockCertifyBatch:
		return &BlockCertifyBatch{}, nil
	case KindBlockCertBatch:
		return &BlockCertBatch{}, nil
	default:
		return nil, fmt.Errorf("wire: unknown message kind %d", uint16(k))
	}
}

// Envelope is a routed message: the unit the transports and the simulator
// move between nodes.
type Envelope struct {
	From NodeID
	To   NodeID
	Msg  Message

	// Verified marks the message's signatures as already checked by a
	// local verification stage (wcrypto.VerifyPool) trusted by the
	// receiving node. It is hop-local metadata: encoding drops it and
	// decoding leaves it false, so a remote peer can never assert it.
	// Handlers treat false as "verify yourself" — the flag is an
	// optimization hint, never a correctness requirement.
	Verified bool
}

// EncodeEnvelope produces the canonical encoding of an envelope, suitable
// for framing over TCP or for size accounting in the simulator.
func EncodeEnvelope(env Envelope) []byte {
	var e Encoder
	appendEnvelope(&e, env)
	return e.Bytes()
}

// AppendEnvelope appends an envelope's canonical encoding to an existing
// encoder — the allocation-free path for transports that pool buffers.
func AppendEnvelope(e *Encoder, env Envelope) { appendEnvelope(e, env) }

func appendEnvelope(e *Encoder, env Envelope) {
	e.U16(uint16(env.Msg.MsgKind()))
	e.ID(env.From)
	e.ID(env.To)
	env.Msg.EncodeTo(e)
}

// DecodeEnvelope parses an envelope previously produced by EncodeEnvelope.
// The decoded message owns fresh copies of every byte field.
func DecodeEnvelope(b []byte) (Envelope, error) {
	return decodeEnvelope(NewDecoder(b))
}

// DecodeEnvelopeOwned parses an envelope from a buffer whose ownership
// transfers to the decoded message: byte fields alias b instead of being
// copied. Transports that allocate one buffer per frame use it to halve
// decode allocations.
func DecodeEnvelopeOwned(b []byte) (Envelope, error) {
	return decodeEnvelope(NewDecoderZeroCopy(b))
}

func decodeEnvelope(d *Decoder) (Envelope, error) {
	k := Kind(d.U16())
	from := d.ID()
	to := d.ID()
	if d.Err() != nil {
		return Envelope{}, d.Err()
	}
	msg, err := newMessage(k)
	if err != nil {
		return Envelope{}, err
	}
	msg.DecodeFrom(d)
	if err := d.Finish(); err != nil {
		return Envelope{}, fmt.Errorf("wire: decoding %v: %w", k, err)
	}
	return Envelope{From: from, To: to, Msg: msg}, nil
}

// EncodeMessage returns the canonical encoding of a bare message (without
// routing headers). Used for embedding messages as dispute evidence.
func EncodeMessage(m Message) []byte {
	var e Encoder
	e.U16(uint16(m.MsgKind()))
	m.EncodeTo(&e)
	return e.Bytes()
}

// DecodeMessage parses a bare message produced by EncodeMessage.
func DecodeMessage(b []byte) (Message, error) {
	d := NewDecoder(b)
	k := Kind(d.U16())
	if d.Err() != nil {
		return nil, d.Err()
	}
	msg, err := newMessage(k)
	if err != nil {
		return nil, err
	}
	msg.DecodeFrom(d)
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("wire: decoding %v: %w", k, err)
	}
	return msg, nil
}

// sizeMemoized is implemented by messages that can cache their own encoded
// size. A message only accepts the memo (memoizeEncodedSize stores it) when
// its contents are immutable by contract — in practice, when every embedded
// block is frozen. Fault paths that tamper a block Invalidate its freeze
// first, so a tampered message keeps recounting and can never serve a stale
// size. DecodeFrom resets the memo.
type sizeMemoized interface {
	encodedSizeMemo() int     // 0 = not memoized
	memoizeEncodedSize(n int) // no-op unless the message is immutable
}

// EncodedSize reports the encoded size of an envelope in bytes by summing
// field widths through a counting encoder — no buffer is allocated and no
// bytes are produced. The simulator uses it to model bandwidth
// serialization delay; the edge and cloud stats counters use it for
// coordination-byte accounting.
//
// Messages carrying frozen blocks memoize their body size on first use
// (sizeMemoized), so the discrete-event simulator's per-message size charge
// degenerates to a field read for the responses that dominate its traffic.
func EncodedSize(env Envelope) int {
	if mm, ok := env.Msg.(sizeMemoized); ok {
		hdr := 2 + 4 + len(env.From) + 4 + len(env.To) // kind + both IDs
		if n := mm.encodedSizeMemo(); n > 0 {
			return hdr + n
		}
		e := Encoder{counting: true}
		env.Msg.EncodeTo(&e)
		mm.memoizeEncodedSize(e.n)
		return hdr + e.n
	}
	e := Encoder{counting: true}
	appendEnvelope(&e, env)
	return e.n
}

// Size reports the encoded size of an envelope in bytes.
//
// Deprecated: use EncodedSize, which counts widths instead of encoding the
// whole envelope.
func Size(env Envelope) int { return EncodedSize(env) }
