package wlog

import (
	"testing"

	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

// TestGroupCommitSharesOneSync batches N buffered block appends behind a
// single Sync and asserts exactly one fsync was issued for all of them —
// the group-commit contract — and that recovery then sees every block
// covered by that sync.
func TestGroupCommitSharesOneSync(t *testing.T) {
	keys, reg := persistKeys(t)
	dir := t.TempDir()
	st, err := OpenStore(dir, true)
	if err != nil {
		t.Fatal(err)
	}

	const n = 8
	var pos uint64
	for i := 0; i < n; i++ {
		e := wire.Entry{Client: "c1", Seq: uint64(i + 1), Value: []byte{byte(i)}}
		e.Sig = wcrypto.SignMsg(keys["c1"], &e)
		b := wire.Block{Edge: "edge-1", ID: uint64(i), StartPos: pos, Entries: []wire.Entry{e}}
		pos++
		if err := st.AppendBlockBuffered(&b); err != nil {
			t.Fatal(err)
		}
	}
	if got := st.Syncs(); got != 0 {
		t.Fatalf("buffered appends issued %d fsyncs, want 0", got)
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := st.Syncs(); got != 1 {
		t.Fatalf("group commit issued %d fsyncs, want 1", got)
	}
	// Idempotent when clean.
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := st.Syncs(); got != 1 {
		t.Fatalf("clean Sync issued another fsync (%d total)", got)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	l, st2, blocks, _, err := Recover(dir, "edge-1", 1, reg, "cloud")
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if blocks != n {
		t.Fatalf("recovered %d blocks, want %d", blocks, n)
	}
	for i := uint64(0); i < n; i++ {
		if _, err := l.Block(i); err != nil {
			t.Fatalf("block %d missing after group-commit recovery: %v", i, err)
		}
	}
}
