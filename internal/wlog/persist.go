package wlog

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

// Persistence: an append-only segment file durably storing cut blocks and
// their cloud certificates, with crash recovery. The format is
// length-prefixed records over the canonical wire encoding:
//
//	record := kind(1) length(4, big-endian) payload(length) crc-free
//
// Torn tails (a partial final record after a crash) are truncated on
// recovery — exactly the blocks whose Phase I responses may not have been
// sent yet, so nothing acknowledged is lost: a block is only acknowledged
// after Append returns, and Append syncs when Durable is set.
//
// Records are self-authenticating on recovery: block digests are
// recomputed and certificates re-verified against the cloud's key, so a
// corrupted store surfaces as an error instead of silent state divergence.

// Record kinds in the segment file.
const (
	recBlock byte = 1
	recCert  byte = 2
)

// ErrCorrupt reports an unrecoverable store inconsistency (as opposed to
// a torn tail, which is repaired silently).
var ErrCorrupt = errors.New("wlog: corrupt segment")

// Store persists a log to a single segment file. It is not safe for
// concurrent use; the owning node serializes access.
//
// Two durability disciplines coexist: AppendBlock/AppendCert fsync each
// record (when the store is durable), while the Buffered variants plus an
// explicit Sync implement group commit — the owning node appends several
// records inside a flush window and pays one fsync for all of them,
// withholding acknowledgements until the shared Sync returns.
type Store struct {
	f    *os.File
	w    *bufio.Writer
	sync bool

	dirty bool   // buffered records not yet synced
	syncs uint64 // fsyncs issued (observable for group-commit tests)
}

// OpenStore opens (or creates) the segment file under dir. When durable
// is set, every record is fsynced before returning — the production
// setting; tests and benchmarks may trade durability for speed.
func OpenStore(dir string, durable bool) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wlog: creating store dir: %w", err)
	}
	path := filepath.Join(dir, "wedgelog.seg")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wlog: opening segment: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return &Store{f: f, w: bufio.NewWriter(f), sync: durable}, nil
}

// Close flushes and closes the segment.
func (s *Store) Close() error {
	if err := s.w.Flush(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}

func (s *Store) append(kind byte, payload []byte, syncNow bool) error {
	var hdr [5]byte
	hdr[0] = kind
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := s.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := s.w.Write(payload); err != nil {
		return err
	}
	s.dirty = true
	if !syncNow {
		return nil
	}
	if err := s.w.Flush(); err != nil {
		return err
	}
	if s.sync {
		s.syncs++
		if err := s.f.Sync(); err != nil {
			return err
		}
	}
	s.dirty = false
	return nil
}

// AppendBlock durably records a cut block (flush + fsync per record).
func (s *Store) AppendBlock(b *wire.Block) error {
	return s.append(recBlock, b.Canonical(), true)
}

// AppendBlockBuffered records a cut block without forcing it to disk; the
// caller owns durability via a later Sync and must not acknowledge the
// block before that Sync returns.
func (s *Store) AppendBlockBuffered(b *wire.Block) error {
	return s.append(recBlock, b.Canonical(), false)
}

// AppendCert durably records a cloud certificate.
func (s *Store) AppendCert(p *wire.BlockProof) error {
	e := wire.GetEncoder()
	defer wire.PutEncoder(e)
	p.EncodeTo(e)
	return s.append(recCert, e.Bytes(), true)
}

// AppendCertBuffered records a certificate without forcing it to disk.
// Certificates are re-obtainable from the cloud, so they may simply ride
// the next group-commit Sync.
func (s *Store) AppendCertBuffered(p *wire.BlockProof) error {
	e := wire.GetEncoder()
	defer wire.PutEncoder(e)
	p.EncodeTo(e)
	return s.append(recCert, e.Bytes(), false)
}

// Sync flushes buffered records and fsyncs them (durable stores): the
// group-commit barrier shared by every record appended since the last
// Sync. It is a no-op when nothing is dirty.
func (s *Store) Sync() error {
	if !s.dirty {
		return nil
	}
	if err := s.w.Flush(); err != nil {
		return err
	}
	if s.sync {
		s.syncs++
		if err := s.f.Sync(); err != nil {
			return err
		}
	}
	s.dirty = false
	return nil
}

// Syncs reports how many fsyncs the store has issued — group-commit tests
// assert N batched blocks share one.
func (s *Store) Syncs() uint64 { return s.syncs }

// ResetTo rewrites the segment to exactly the blocks and certificates l
// currently holds. A demoted ex-leader truncates its in-memory log to
// the certified prefix (Log.TruncateUncertified) before re-mirroring the
// new leader's history; the durable segment must shrink with it, because
// recovery requires strictly sequential block ids and would reject the
// refetched blocks re-appended after the old records. The rewrite is
// flushed (and fsynced on durable stores) before returning.
func (s *Store) ResetTo(l *Log) error {
	if err := s.w.Flush(); err != nil {
		return err
	}
	if err := s.f.Truncate(0); err != nil {
		return err
	}
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	s.w.Reset(s.f)
	s.dirty = false
	for bid := uint64(0); bid < l.NumBlocks(); bid++ {
		blk, err := l.Block(bid)
		if err != nil {
			return err
		}
		if err := s.append(recBlock, blk.Canonical(), false); err != nil {
			return err
		}
		// Only individually signed certificates are durable — recovery
		// verifies each record's CloudSig, and a batch-derived certificate
		// (empty sig) is re-obtainable from the cloud after restart.
		if p, ok := l.Cert(bid); ok && len(p.CloudSig) > 0 {
			if err := s.AppendCertBuffered(&p); err != nil {
				return err
			}
		}
	}
	return s.Sync()
}

// Recover replays the segment into a fresh Log, verifying digests and
// certificate signatures against the registry (the cloud's identity is
// taken from each certificate's signer field recorded at write time).
// A torn final record is truncated. Returns the number of blocks and
// certificates recovered.
func Recover(dir string, edge wire.NodeID, batchSize int, reg *wcrypto.Registry, cloud wire.NodeID) (*Log, *Store, int, int, error) {
	path := filepath.Join(dir, "wedgelog.seg")
	l := New(edge, batchSize)
	blocks, certs := 0, 0

	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		st, err := OpenStore(dir, true)
		return l, st, 0, 0, err
	}
	if err != nil {
		return nil, nil, 0, 0, err
	}

	r := bufio.NewReader(f)
	var validLen int64
	for {
		var hdr [5]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			break // clean EOF or torn header: truncate here
		}
		n := binary.BigEndian.Uint32(hdr[1:])
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			break // torn payload: truncate here
		}
		switch hdr[0] {
		case recBlock:
			var b wire.Block
			d := wire.NewDecoder(payload)
			b.DecodeFrom(d)
			if err := d.Finish(); err != nil {
				f.Close()
				return nil, nil, 0, 0, fmt.Errorf("%w: block record: %v", ErrCorrupt, err)
			}
			if b.Edge != edge {
				f.Close()
				return nil, nil, 0, 0, fmt.Errorf("%w: block for edge %q in %q's store", ErrCorrupt, b.Edge, edge)
			}
			if err := l.restoreBlock(b); err != nil {
				f.Close()
				return nil, nil, 0, 0, err
			}
			blocks++
		case recCert:
			var p wire.BlockProof
			d := wire.NewDecoder(payload)
			p.DecodeFrom(d)
			if err := d.Finish(); err != nil {
				f.Close()
				return nil, nil, 0, 0, fmt.Errorf("%w: cert record: %v", ErrCorrupt, err)
			}
			if err := wcrypto.VerifyMsg(reg, cloud, &p, p.CloudSig); err != nil {
				f.Close()
				return nil, nil, 0, 0, fmt.Errorf("%w: cert signature: %v", ErrCorrupt, err)
			}
			if err := l.SetCert(p); err != nil {
				f.Close()
				return nil, nil, 0, 0, fmt.Errorf("%w: cert: %v", ErrCorrupt, err)
			}
			certs++
		default:
			f.Close()
			return nil, nil, 0, 0, fmt.Errorf("%w: unknown record kind %d", ErrCorrupt, hdr[0])
		}
		validLen += 5 + int64(n)
	}
	f.Close()

	// Repair a torn tail before reopening for append.
	if info, err := os.Stat(path); err == nil && info.Size() > validLen {
		if err := os.Truncate(path, validLen); err != nil {
			return nil, nil, 0, 0, fmt.Errorf("wlog: truncating torn tail: %w", err)
		}
	}
	st, err := OpenStore(dir, true)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	return l, st, blocks, certs, nil
}

// restoreBlock reinstates a recovered block: it must be the next block id,
// and positions must be contiguous with the log tail.
func (l *Log) restoreBlock(b wire.Block) error {
	if b.ID != uint64(len(l.blocks)) {
		return fmt.Errorf("%w: block %d out of order (want %d)", ErrCorrupt, b.ID, len(l.blocks))
	}
	if b.StartPos != l.bufStart {
		return fmt.Errorf("%w: block %d position %d (want %d)", ErrCorrupt, b.ID, b.StartPos, l.bufStart)
	}
	b.Freeze() // recovered blocks are immutable; share one encoding
	l.digests[b.ID] = wcrypto.BlockDigest(&b)
	l.blocks = append(l.blocks, b)
	l.bufStart += uint64(len(b.Entries))
	for i := range b.Entries {
		e := &b.Entries[i]
		if !IsNoop(e) {
			l.markSeen(*e, b.StartPos+uint64(i))
		}
	}
	return nil
}
