package wlog

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

func persistKeys(t *testing.T) (map[wire.NodeID]wcrypto.KeyPair, *wcrypto.Registry) {
	t.Helper()
	reg := wcrypto.NewRegistry()
	keys := map[wire.NodeID]wcrypto.KeyPair{}
	for _, id := range []wire.NodeID{"cloud", "edge-1", "c1"} {
		k := wcrypto.DeterministicKey(id)
		keys[id] = k
		reg.Register(id, k.Pub)
	}
	return keys, reg
}

// buildSegment writes n blocks (with certs for the first certified) into
// dir and returns the blocks.
func buildSegment(t *testing.T, dir string, keys map[wire.NodeID]wcrypto.KeyPair, n, certified int) []wire.Block {
	t.Helper()
	st, err := OpenStore(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	var blocks []wire.Block
	var pos uint64
	for i := 0; i < n; i++ {
		e := wire.Entry{Client: "c1", Seq: uint64(i + 1), Value: []byte{byte(i)}}
		e.Sig = wcrypto.SignMsg(keys["c1"], &e)
		b := wire.Block{Edge: "edge-1", ID: uint64(i), StartPos: pos, Entries: []wire.Entry{e}}
		pos++
		if err := st.AppendBlock(&b); err != nil {
			t.Fatal(err)
		}
		blocks = append(blocks, b)
		if i < certified {
			p := wire.BlockProof{Edge: "edge-1", BID: b.ID, Digest: wcrypto.BlockDigest(&b)}
			p.CloudSig = wcrypto.SignMsg(keys["cloud"], &p)
			if err := st.AppendCert(&p); err != nil {
				t.Fatal(err)
			}
		}
	}
	return blocks
}

func TestRecoverEmptyDir(t *testing.T) {
	_, reg := persistKeys(t)
	l, st, blocks, certs, err := Recover(t.TempDir(), "edge-1", 10, reg, "cloud")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if blocks != 0 || certs != 0 || l.NumBlocks() != 0 {
		t.Fatalf("recovered %d/%d from nothing", blocks, certs)
	}
}

func TestRecoverRoundTrip(t *testing.T) {
	keys, reg := persistKeys(t)
	dir := t.TempDir()
	want := buildSegment(t, dir, keys, 5, 3)

	l, st, blocks, certs, err := Recover(dir, "edge-1", 10, reg, "cloud")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if blocks != 5 || certs != 3 {
		t.Fatalf("recovered %d blocks / %d certs, want 5/3", blocks, certs)
	}
	for i, w := range want {
		got, err := l.Block(uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Canonical(), w.Canonical()) {
			t.Fatalf("block %d differs after recovery", i)
		}
	}
	if l.CertifiedBlocks() != 3 {
		t.Fatalf("certified = %d", l.CertifiedBlocks())
	}
	if _, ok := l.Cert(2); !ok {
		t.Fatal("cert 2 lost")
	}
	if _, ok := l.Cert(3); ok {
		t.Fatal("phantom cert 3")
	}
	// Position counters continue where the log left off.
	if l.NextPos() != 5 {
		t.Fatalf("NextPos = %d", l.NextPos())
	}
	// Replay defence survives recovery: the same (client, seq) again.
	e := wire.Entry{Client: "c1", Seq: 1, Value: []byte("replay")}
	if _, err := l.Append(e, 0); !errors.Is(err, ErrDuplicateEntry) {
		t.Fatalf("replay after recovery: %v", err)
	}
}

func TestRecoverAppendsContinue(t *testing.T) {
	keys, reg := persistKeys(t)
	dir := t.TempDir()
	buildSegment(t, dir, keys, 2, 2)

	l, st, _, _, err := Recover(dir, "edge-1", 1, reg, "cloud")
	if err != nil {
		t.Fatal(err)
	}
	e := wire.Entry{Client: "c1", Seq: 99, Value: []byte("new")}
	e.Sig = wcrypto.SignMsg(keys["c1"], &e)
	if _, err := l.Append(e, 1); err != nil {
		t.Fatal(err)
	}
	blk := l.TryCut(1, false)
	if blk == nil || blk.ID != 2 {
		t.Fatalf("post-recovery block = %+v", blk)
	}
	if err := st.AppendBlock(blk); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// A second recovery sees the continued history.
	l2, st2, blocks, _, err := Recover(dir, "edge-1", 1, reg, "cloud")
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if blocks != 3 || l2.NumBlocks() != 3 {
		t.Fatalf("second recovery blocks = %d", blocks)
	}
}

func TestRecoverTruncatesTornTail(t *testing.T) {
	keys, reg := persistKeys(t)
	dir := t.TempDir()
	buildSegment(t, dir, keys, 3, 0)
	path := filepath.Join(dir, "wedgelog.seg")
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last record mid-payload.
	if err := os.Truncate(path, info.Size()-3); err != nil {
		t.Fatal(err)
	}
	l, st, blocks, _, err := Recover(dir, "edge-1", 10, reg, "cloud")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if blocks != 2 || l.NumBlocks() != 2 {
		t.Fatalf("recovered %d blocks after torn tail, want 2", blocks)
	}
	// The torn bytes are gone from disk.
	info2, _ := os.Stat(path)
	if info2.Size() >= info.Size()-3 {
		t.Fatal("torn tail not truncated")
	}
}

func TestRecoverRejectsForeignBlocks(t *testing.T) {
	keys, reg := persistKeys(t)
	dir := t.TempDir()
	st, _ := OpenStore(dir, true)
	b := wire.Block{Edge: "edge-OTHER", ID: 0}
	st.AppendBlock(&b)
	st.Close()
	_ = keys
	if _, _, _, _, err := Recover(dir, "edge-1", 10, reg, "cloud"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("foreign block: err = %v", err)
	}
}

func TestRecoverRejectsForgedCert(t *testing.T) {
	keys, reg := persistKeys(t)
	dir := t.TempDir()
	st, _ := OpenStore(dir, true)
	b := wire.Block{Edge: "edge-1", ID: 0, Entries: []wire.Entry{{Client: "c1", Seq: 1}}}
	st.AppendBlock(&b)
	p := wire.BlockProof{Edge: "edge-1", BID: 0, Digest: wcrypto.BlockDigest(&b)}
	p.CloudSig = wcrypto.SignMsg(keys["edge-1"], &p) // edge forging the cloud
	st.AppendCert(&p)
	st.Close()
	if _, _, _, _, err := Recover(dir, "edge-1", 10, reg, "cloud"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("forged cert: err = %v", err)
	}
}

func TestRecoverRejectsOutOfOrderBlocks(t *testing.T) {
	keys, reg := persistKeys(t)
	dir := t.TempDir()
	st, _ := OpenStore(dir, true)
	e := wire.Entry{Client: "c1", Seq: 1}
	e.Sig = wcrypto.SignMsg(keys["c1"], &e)
	b := wire.Block{Edge: "edge-1", ID: 5, Entries: []wire.Entry{e}}
	st.AppendBlock(&b)
	st.Close()
	if _, _, _, _, err := Recover(dir, "edge-1", 10, reg, "cloud"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("out-of-order block: err = %v", err)
	}
}

func TestRecoverRejectsUnknownRecordKind(t *testing.T) {
	_, reg := persistKeys(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "wedgelog.seg")
	if err := os.WriteFile(path, []byte{9, 0, 0, 0, 1, 0xFF}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, _, err := Recover(dir, "edge-1", 10, reg, "cloud"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unknown kind: err = %v", err)
	}
}

func TestResetToShrinksSegment(t *testing.T) {
	keys, reg := persistKeys(t)
	dir := t.TempDir()
	buildSegment(t, dir, keys, 5, 2)

	l, st, _, _, err := Recover(dir, "edge-1", 10, reg, "cloud")
	if err != nil {
		t.Fatal(err)
	}
	// Demotion path: drop the uncertified tail, rewrite the segment.
	if removed := l.TruncateUncertified(); removed != 3 {
		t.Fatalf("removed = %d", removed)
	}
	if err := st.ResetTo(l); err != nil {
		t.Fatal(err)
	}
	// The node then re-mirrors the divergent history under new block ids
	// 2.. — appends after the reset must recover cleanly.
	e := wire.Entry{Client: "c1", Seq: 100, Value: []byte("new history")}
	e.Sig = wcrypto.SignMsg(keys["c1"], &e)
	nb := wire.Block{Edge: "edge-1", ID: 2, StartPos: 2, Entries: []wire.Entry{e}}
	if err := st.AppendBlock(&nb); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	l2, st2, blocks, certs, err := Recover(dir, "edge-1", 10, reg, "cloud")
	if err != nil {
		t.Fatalf("recovery after reset: %v", err)
	}
	defer st2.Close()
	if blocks != 3 || certs != 2 {
		t.Fatalf("recovered %d blocks / %d certs, want 3/2", blocks, certs)
	}
	got, err := l2.Block(2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Canonical(), nb.Canonical()) {
		t.Fatal("post-reset block corrupted")
	}
	if l2.CertifiedBlocks() != 2 {
		t.Fatalf("certified = %d", l2.CertifiedBlocks())
	}
}

func TestResetToEmptyLog(t *testing.T) {
	keys, reg := persistKeys(t)
	dir := t.TempDir()
	buildSegment(t, dir, keys, 3, 0)
	l, st, _, _, err := Recover(dir, "edge-1", 10, reg, "cloud")
	if err != nil {
		t.Fatal(err)
	}
	l.TruncateUncertified()
	if err := st.ResetTo(l); err != nil {
		t.Fatal(err)
	}
	st.Close()
	if info, err := os.Stat(filepath.Join(dir, "wedgelog.seg")); err != nil || info.Size() != 0 {
		t.Fatalf("segment not emptied: %v %d", err, info.Size())
	}
}
