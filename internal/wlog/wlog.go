// Package wlog implements the WedgeChain logging layer kept at each edge
// node (Section IV of the paper): an append-only log of blocks, where each
// block is a batch of client-signed entries. The log tracks, per block, the
// digest sent for data-free certification and the cloud-signed block-proof
// that upgrades the block from Phase I to Phase II commitment.
//
// The package also implements the log-position reservation extension
// (Section IV-E): clients may reserve absolute positions and sign entries
// for them, which makes arbitrary requests idempotent — a replayed entry
// targets an already-filled position and is rejected.
package wlog

import (
	"bytes"
	"errors"
	"fmt"

	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

// Common errors.
var (
	ErrNoSuchBlock     = errors.New("wlog: no such block")
	ErrPositionTaken   = errors.New("wlog: reserved position already filled")
	ErrPositionInvalid = errors.New("wlog: entry position not reserved for this client")
	ErrPositionCut     = errors.New("wlog: reserved position already cut into a block")
	ErrCertDigest      = errors.New("wlog: certificate digest does not match block")
	ErrDuplicateEntry  = errors.New("wlog: duplicate entry (client, seq)")
)

// slot is one buffered log position awaiting block cut.
type slot struct {
	entry      wire.Entry
	filled     bool
	reserved   bool
	reservedBy wire.NodeID
	deadline   int64 // reserved slots expire at this time; 0 = none
	enqueuedAt int64
}

// Log is a single edge node's log. It is not safe for concurrent use; the
// owning node serializes access (nodes are single-threaded state machines).
type Log struct {
	edge      wire.NodeID
	batchSize int

	buf      []slot
	bufStart uint64 // absolute position of buf[0]

	blocks  []wire.Block               // blocks[i] has ID == uint64(i)
	digests map[uint64][]byte          // block id -> digest
	certs   map[uint64]wire.BlockProof // block id -> cloud certificate

	certifiedEntries uint64 // total entries across certified blocks
	certifiedBlocks  uint64

	// seen maps client -> seq -> absolute position + 1 (0 is unused so the
	// zero value means "never accepted"). Recording the position — not just
	// a boolean — lets a promoted leader answer a client's post-failover
	// resend with the block that already holds the entry instead of a bare
	// rejection.
	seen map[wire.NodeID]map[uint64]uint64
}

// New returns an empty log for the given edge identity cutting blocks of
// batchSize entries.
func New(edge wire.NodeID, batchSize int) *Log {
	if batchSize <= 0 {
		batchSize = 1
	}
	return &Log{
		edge:      edge,
		batchSize: batchSize,
		digests:   make(map[uint64][]byte),
		certs:     make(map[uint64]wire.BlockProof),
		seen:      make(map[wire.NodeID]map[uint64]uint64),
	}
}

// Edge returns the owning edge identity.
func (l *Log) Edge() wire.NodeID { return l.edge }

// BatchSize returns the block cut threshold.
func (l *Log) BatchSize() int { return l.batchSize }

// NumBlocks returns the number of blocks cut so far.
func (l *Log) NumBlocks() uint64 { return uint64(len(l.blocks)) }

// BufferLen returns the number of buffered (uncut) positions.
func (l *Log) BufferLen() int { return len(l.buf) }

// NextPos returns the next unassigned absolute log position.
func (l *Log) NextPos() uint64 { return l.bufStart + uint64(len(l.buf)) }

// CertifiedEntries returns the number of entries in certified blocks — the
// LogSize the cloud gossips for omission detection.
func (l *Log) CertifiedEntries() uint64 { return l.certifiedEntries }

// CertifiedBlocks returns the number of certified blocks.
func (l *Log) CertifiedBlocks() uint64 { return l.certifiedBlocks }

// Append adds a client entry to the buffer. Entries carrying a reserved
// position (Pos > 0) must land in their reserved slot; others take the next
// free position. Duplicate (client, seq) pairs are rejected, implementing
// the replay defence. The returned position is absolute.
func (l *Log) Append(e wire.Entry, now int64) (pos uint64, err error) {
	if s := l.seen[e.Client]; s != nil && s[e.Seq] > 0 {
		return 0, fmt.Errorf("%w: %s/%d", ErrDuplicateEntry, e.Client, e.Seq)
	}
	if e.Pos > 0 {
		p := e.Pos - 1
		if p < l.bufStart {
			return 0, fmt.Errorf("%w: position %d", ErrPositionCut, p)
		}
		idx := int(p - l.bufStart)
		if idx >= len(l.buf) {
			return 0, fmt.Errorf("%w: position %d never reserved", ErrPositionInvalid, p)
		}
		s := &l.buf[idx]
		if !s.reserved || s.reservedBy != e.Client {
			return 0, fmt.Errorf("%w: position %d", ErrPositionInvalid, p)
		}
		if s.filled {
			return 0, fmt.Errorf("%w: position %d", ErrPositionTaken, p)
		}
		s.entry = e
		s.filled = true
		s.enqueuedAt = now
		l.markSeen(e, p)
		return p, nil
	}
	pos = l.bufStart + uint64(len(l.buf))
	l.buf = append(l.buf, slot{entry: e, filled: true, enqueuedAt: now})
	l.markSeen(e, pos)
	return pos, nil
}

func (l *Log) markSeen(e wire.Entry, pos uint64) {
	s := l.seen[e.Client]
	if s == nil {
		s = make(map[uint64]uint64)
		l.seen[e.Client] = s
	}
	s[e.Seq] = pos + 1
}

// SeenPos reports the absolute position at which (client, seq) was
// accepted, if it ever was — the lookup behind duplicate re-acking.
func (l *Log) SeenPos(client wire.NodeID, seq uint64) (uint64, bool) {
	p := l.seen[client][seq]
	if p == 0 {
		return 0, false
	}
	return p - 1, true
}

// BlockByPos returns the cut block containing absolute position pos, or
// false when pos is still buffered (or was never assigned).
func (l *Log) BlockByPos(pos uint64) (*wire.Block, bool) {
	if pos >= l.bufStart {
		return nil, false
	}
	// Blocks are contiguous and ordered by StartPos; binary search for the
	// last block whose StartPos <= pos.
	lo, hi := 0, len(l.blocks)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if l.blocks[mid].StartPos <= pos {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	if len(l.blocks) == 0 || l.blocks[lo].StartPos > pos {
		return nil, false
	}
	return &l.blocks[lo], true
}

// InstallBlock mirrors a block cut elsewhere — the follower half of
// replica-group log replication. The block must be the next one (dense
// ids from the leader's replication stream); its digest must be the
// caller-verified recomputation over the received content. The installed
// copy is frozen and its entries are marked seen, so a promoted leader
// dedups client resends of entries it inherited.
func (l *Log) InstallBlock(blk *wire.Block, digest []byte) error {
	if blk.ID != uint64(len(l.blocks)) {
		return fmt.Errorf("%w: install %d, next is %d", ErrNoSuchBlock, blk.ID, len(l.blocks))
	}
	if len(l.buf) > 0 {
		return fmt.Errorf("wlog: install into a log with buffered entries")
	}
	cp := *blk
	cp.Entries = append([]wire.Entry(nil), blk.Entries...)
	cp.Invalidate()
	cp.Freeze()
	l.blocks = append(l.blocks, cp)
	l.digests[cp.ID] = append([]byte(nil), digest...)
	for i := range cp.Entries {
		e := &cp.Entries[i]
		if !IsNoop(e) {
			l.markSeen(*e, cp.StartPos+uint64(i))
		}
	}
	l.bufStart = cp.StartPos + uint64(len(cp.Entries))
	return nil
}

// Reserve grants count consecutive absolute positions to client, expiring
// at deadline. Returns the first reserved position.
func (l *Log) Reserve(client wire.NodeID, count int, deadline int64) uint64 {
	start := l.NextPos()
	for i := 0; i < count; i++ {
		l.buf = append(l.buf, slot{reserved: true, reservedBy: client, deadline: deadline})
	}
	return start
}

// EntryAt returns the accepted entry at absolute position pos, whether
// it already sits in a cut block or is still buffered.
func (l *Log) EntryAt(pos uint64) (wire.Entry, bool) {
	if pos >= l.bufStart {
		i := pos - l.bufStart
		if i >= uint64(len(l.buf)) || !l.buf[i].filled {
			return wire.Entry{}, false
		}
		return l.buf[i].entry, true
	}
	blk, ok := l.BlockByPos(pos)
	if !ok {
		return wire.Entry{}, false
	}
	i := pos - blk.StartPos
	if i >= uint64(len(blk.Entries)) {
		return wire.Entry{}, false
	}
	return blk.Entries[i], true
}

// noopEntry fills an expired reservation so position arithmetic stays
// contiguous. Readers recognize no-ops by the empty client identity.
func noopEntry() wire.Entry { return wire.Entry{} }

// IsNoop reports whether an entry is a reservation-expiry filler.
func IsNoop(e *wire.Entry) bool { return e.Client == "" }

// cutEligible reports how many leading buffer slots can form a block at
// time now: a prefix where every slot is filled or an expired reservation.
func (l *Log) cutEligible(now int64) int {
	n := 0
	for i := range l.buf {
		s := &l.buf[i]
		if !s.filled && (!s.reserved || s.deadline == 0 || s.deadline > now) {
			break
		}
		n++
	}
	return n
}

// TryCut cuts the next block if a full batch is ready (or if force is set
// and at least one eligible slot exists — used for flush timeouts and
// no-op-triggered refreshes). Expired reservations become no-op entries.
// Returns nil when no block was cut.
func (l *Log) TryCut(now int64, force bool) *wire.Block {
	eligible := l.cutEligible(now)
	take := l.batchSize
	if eligible < take {
		if !force || eligible == 0 {
			return nil
		}
		take = eligible
	}
	entries := make([]wire.Entry, take)
	for i := 0; i < take; i++ {
		s := &l.buf[i]
		if s.filled {
			entries[i] = s.entry
		} else {
			entries[i] = noopEntry()
		}
	}
	blk := wire.Block{
		Edge:     l.edge,
		ID:       uint64(len(l.blocks)),
		StartPos: l.bufStart,
		Ts:       now,
		Entries:  entries,
	}
	l.buf = append([]slot(nil), l.buf[take:]...)
	l.bufStart += uint64(take)
	// Freeze before sharing: persist, certify and response paths reuse
	// the cached canonical bytes and digest, and concurrent readers
	// (verify pool, clients on an in-process transport) only ever read
	// the fully populated cache.
	blk.Freeze()
	l.digests[blk.ID] = wcrypto.BlockDigest(&blk)
	l.blocks = append(l.blocks, blk)
	return &l.blocks[blk.ID]
}

// Block returns the cut block with the given id.
func (l *Log) Block(bid uint64) (*wire.Block, error) {
	if bid >= uint64(len(l.blocks)) {
		return nil, fmt.Errorf("%w: %d", ErrNoSuchBlock, bid)
	}
	return &l.blocks[bid], nil
}

// Digest returns the digest of block bid.
func (l *Log) Digest(bid uint64) ([]byte, error) {
	d, ok := l.digests[bid]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoSuchBlock, bid)
	}
	return d, nil
}

// SetCert records the cloud's block-proof for a block, upgrading it to
// Phase II. The proof's digest must match the locally computed digest.
func (l *Log) SetCert(p wire.BlockProof) error {
	d, ok := l.digests[p.BID]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchBlock, p.BID)
	}
	if !bytes.Equal(d, p.Digest) {
		return ErrCertDigest
	}
	if _, dup := l.certs[p.BID]; dup {
		return nil // idempotent
	}
	l.certs[p.BID] = p
	l.certifiedBlocks++
	l.certifiedEntries += uint64(len(l.blocks[p.BID].Entries))
	return nil
}

// Cert returns the block-proof for bid if the block is certified.
func (l *Log) Cert(bid uint64) (wire.BlockProof, bool) {
	c, ok := l.certs[bid]
	return c, ok
}

// CertifiedThrough returns the highest block id B such that all blocks
// 0..B are certified, or false when block 0 is uncertified. L0 compaction
// consumes only certified prefixes.
func (l *Log) CertifiedThrough() (uint64, bool) {
	var last uint64
	found := false
	for bid := uint64(0); bid < uint64(len(l.blocks)); bid++ {
		if _, ok := l.certs[bid]; !ok {
			break
		}
		last, found = bid, true
	}
	return last, found
}

// unmarkSeen forgets (client, seq) if it still maps to position pos —
// the inverse of markSeen, used when truncation removes the entry.
func (l *Log) unmarkSeen(e *wire.Entry, pos uint64) {
	if IsNoop(e) {
		return
	}
	if s := l.seen[e.Client]; s != nil && s[e.Seq] == pos+1 {
		delete(s, e.Seq)
	}
}

// TruncateUncertified discards everything beyond the contiguous certified
// prefix: buffered (uncut) entries, uncertified blocks, and any certified
// blocks stranded above the first gap. A demoted ex-leader calls it
// before rejoining as a follower — blocks the cloud never certified are
// not part of the durable truth, and the new leader's history may
// diverge from them, so mirroring must restart from the certified
// frontier (stranded certified blocks are refetched with their
// certificates via catch-up). Returns the number of blocks removed.
func (l *Log) TruncateUncertified() int {
	var keep uint64
	if ct, ok := l.CertifiedThrough(); ok {
		keep = ct + 1
	}
	for i := range l.buf {
		s := &l.buf[i]
		if s.filled {
			l.unmarkSeen(&s.entry, l.bufStart+uint64(i))
		}
	}
	l.buf = nil
	removed := len(l.blocks) - int(keep)
	for bid := keep; bid < uint64(len(l.blocks)); bid++ {
		blk := &l.blocks[bid]
		for i := range blk.Entries {
			l.unmarkSeen(&blk.Entries[i], blk.StartPos+uint64(i))
		}
		if _, ok := l.certs[bid]; ok {
			l.certifiedBlocks--
			l.certifiedEntries -= uint64(len(blk.Entries))
			delete(l.certs, bid)
		}
		delete(l.digests, bid)
	}
	l.blocks = l.blocks[:keep]
	if keep == 0 {
		l.bufStart = 0
	} else {
		last := &l.blocks[keep-1]
		l.bufStart = last.StartPos + uint64(len(last.Entries))
	}
	return removed
}
