package wlog

import (
	"bytes"
	"errors"
	"testing"

	"wedgechain/internal/wcrypto"
	"wedgechain/internal/wire"
)

func entry(client wire.NodeID, seq uint64) wire.Entry {
	return wire.Entry{Client: client, Seq: seq, Value: []byte{byte(seq)}}
}

func TestAppendAndCutBatch(t *testing.T) {
	l := New("edge-1", 3)
	for i := uint64(0); i < 3; i++ {
		pos, err := l.Append(entry("c", i), 10)
		if err != nil {
			t.Fatal(err)
		}
		if pos != i {
			t.Fatalf("pos = %d, want %d", pos, i)
		}
	}
	blk := l.TryCut(11, false)
	if blk == nil {
		t.Fatal("full batch did not cut")
	}
	if blk.ID != 0 || blk.StartPos != 0 || len(blk.Entries) != 3 {
		t.Fatalf("block = %+v", blk)
	}
	if l.BufferLen() != 0 {
		t.Fatalf("buffer not drained: %d", l.BufferLen())
	}
	if l.NumBlocks() != 1 {
		t.Fatalf("NumBlocks = %d", l.NumBlocks())
	}
}

func TestTryCutPartialNeedsForce(t *testing.T) {
	l := New("edge-1", 10)
	l.Append(entry("c", 1), 0)
	if blk := l.TryCut(1, false); blk != nil {
		t.Fatal("partial batch cut without force")
	}
	blk := l.TryCut(1, true)
	if blk == nil || len(blk.Entries) != 1 {
		t.Fatalf("forced cut = %+v", blk)
	}
}

func TestTryCutEmptyForceReturnsNil(t *testing.T) {
	l := New("edge-1", 10)
	if blk := l.TryCut(1, true); blk != nil {
		t.Fatal("cut an empty buffer")
	}
}

func TestBlockIDsMonotonic(t *testing.T) {
	l := New("edge-1", 1)
	for i := uint64(0); i < 5; i++ {
		l.Append(entry("c", i), 0)
		blk := l.TryCut(0, false)
		if blk == nil || blk.ID != i {
			t.Fatalf("block %d = %+v", i, blk)
		}
		if blk.StartPos != i {
			t.Fatalf("StartPos = %d, want %d", blk.StartPos, i)
		}
	}
}

func TestDigestMatchesCanonicalHash(t *testing.T) {
	l := New("edge-1", 1)
	l.Append(entry("c", 1), 0)
	blk := l.TryCut(0, false)
	d, err := l.Digest(blk.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d, wcrypto.BlockDigest(blk)) {
		t.Fatal("stored digest != recomputed digest")
	}
}

func TestCertLifecycle(t *testing.T) {
	l := New("edge-1", 2)
	l.Append(entry("c", 1), 0)
	l.Append(entry("c", 2), 0)
	blk := l.TryCut(0, false)
	d, _ := l.Digest(blk.ID)

	if _, ok := l.Cert(blk.ID); ok {
		t.Fatal("uncertified block has a cert")
	}
	proof := wire.BlockProof{Edge: "edge-1", BID: blk.ID, Digest: d}
	if err := l.SetCert(proof); err != nil {
		t.Fatal(err)
	}
	if _, ok := l.Cert(blk.ID); !ok {
		t.Fatal("cert not stored")
	}
	if l.CertifiedEntries() != 2 || l.CertifiedBlocks() != 1 {
		t.Fatalf("certified counts = %d/%d", l.CertifiedEntries(), l.CertifiedBlocks())
	}
	// Idempotent re-set must not double-count.
	if err := l.SetCert(proof); err != nil {
		t.Fatal(err)
	}
	if l.CertifiedEntries() != 2 {
		t.Fatalf("re-cert double counted: %d", l.CertifiedEntries())
	}
}

func TestSetCertRejectsWrongDigest(t *testing.T) {
	l := New("edge-1", 1)
	l.Append(entry("c", 1), 0)
	blk := l.TryCut(0, false)
	bad := wire.BlockProof{Edge: "edge-1", BID: blk.ID, Digest: wcrypto.Digest([]byte("other"))}
	if err := l.SetCert(bad); !errors.Is(err, ErrCertDigest) {
		t.Fatalf("err = %v, want ErrCertDigest", err)
	}
}

func TestSetCertUnknownBlock(t *testing.T) {
	l := New("edge-1", 1)
	err := l.SetCert(wire.BlockProof{BID: 7})
	if !errors.Is(err, ErrNoSuchBlock) {
		t.Fatalf("err = %v", err)
	}
}

func TestCertifiedThrough(t *testing.T) {
	l := New("edge-1", 1)
	for i := uint64(0); i < 3; i++ {
		l.Append(entry("c", i), 0)
		l.TryCut(0, false)
	}
	if _, ok := l.CertifiedThrough(); ok {
		t.Fatal("nothing certified yet")
	}
	cert := func(bid uint64) {
		d, _ := l.Digest(bid)
		if err := l.SetCert(wire.BlockProof{Edge: "edge-1", BID: bid, Digest: d}); err != nil {
			t.Fatal(err)
		}
	}
	cert(0)
	cert(2) // gap at 1
	got, ok := l.CertifiedThrough()
	if !ok || got != 0 {
		t.Fatalf("CertifiedThrough = %d,%v want 0,true", got, ok)
	}
	cert(1)
	got, ok = l.CertifiedThrough()
	if !ok || got != 2 {
		t.Fatalf("CertifiedThrough = %d,%v want 2,true", got, ok)
	}
}

func TestDuplicateEntryRejected(t *testing.T) {
	l := New("edge-1", 10)
	if _, err := l.Append(entry("c", 7), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(entry("c", 7), 0); !errors.Is(err, ErrDuplicateEntry) {
		t.Fatalf("replayed entry: err = %v", err)
	}
	// Same seq from another client is fine.
	if _, err := l.Append(entry("other", 7), 0); err != nil {
		t.Fatal(err)
	}
}

func TestReservationFlow(t *testing.T) {
	l := New("edge-1", 4)
	start := l.Reserve("c", 2, 100)
	if start != 0 {
		t.Fatalf("Reserve start = %d", start)
	}
	// Unreserved entry lands after the reserved slots.
	pos, err := l.Append(entry("other", 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if pos != 2 {
		t.Fatalf("unreserved pos = %d, want 2", pos)
	}
	// Entry signed for position 1 (Pos is position+1).
	e := entry("c", 5)
	e.Pos = 2
	pos, err = l.Append(e, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pos != 1 {
		t.Fatalf("reserved pos = %d, want 1", pos)
	}
	// Replay to the same position must fail.
	e2 := entry("c", 6)
	e2.Pos = 2
	if _, err := l.Append(e2, 0); !errors.Is(err, ErrPositionTaken) {
		t.Fatalf("replay err = %v", err)
	}
	// Wrong client for a reserved slot must fail.
	e3 := entry("other", 9)
	e3.Pos = 1
	if _, err := l.Append(e3, 0); !errors.Is(err, ErrPositionInvalid) {
		t.Fatalf("wrong client err = %v", err)
	}
}

func TestReservationExpiryBecomesNoop(t *testing.T) {
	l := New("edge-1", 2)
	l.Reserve("c", 1, 50) // expires at t=50
	l.Append(entry("other", 1), 0)
	// Before expiry the block must not cut (hole in the prefix).
	if blk := l.TryCut(10, false); blk != nil {
		t.Fatal("cut across an unexpired reservation")
	}
	blk := l.TryCut(60, false)
	if blk == nil {
		t.Fatal("expired reservation blocked the cut")
	}
	if !IsNoop(&blk.Entries[0]) {
		t.Fatalf("expired slot not a no-op: %+v", blk.Entries[0])
	}
	if IsNoop(&blk.Entries[1]) {
		t.Fatal("real entry marked no-op")
	}
}

func TestReservedPositionAfterCutRejected(t *testing.T) {
	l := New("edge-1", 1)
	l.Reserve("c", 1, 5)
	blk := l.TryCut(10, false) // reservation expired, cut as no-op
	if blk == nil {
		t.Fatal("no cut")
	}
	e := entry("c", 1)
	e.Pos = 1
	if _, err := l.Append(e, 11); !errors.Is(err, ErrPositionCut) {
		t.Fatalf("late reserved entry: err = %v", err)
	}
}

func TestBlockLookupErrors(t *testing.T) {
	l := New("edge-1", 1)
	if _, err := l.Block(0); !errors.Is(err, ErrNoSuchBlock) {
		t.Fatalf("Block(0) err = %v", err)
	}
	if _, err := l.Digest(0); !errors.Is(err, ErrNoSuchBlock) {
		t.Fatalf("Digest(0) err = %v", err)
	}
}

func certify(t *testing.T, l *Log, bid uint64) {
	t.Helper()
	d, err := l.Digest(bid)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.SetCert(wire.BlockProof{Edge: l.Edge(), BID: bid, Digest: d}); err != nil {
		t.Fatal(err)
	}
}

func TestTruncateUncertified(t *testing.T) {
	l := New("edge-1", 2)
	for i := uint64(1); i <= 8; i++ {
		if _, err := l.Append(entry("c", i), 0); err != nil {
			t.Fatal(err)
		}
		l.TryCut(0, false)
	}
	l.Append(entry("c", 9), 0) // buffered, uncut
	// Certify 0, 1 and 3 — block 2 is the gap, so 3 is stranded above
	// the contiguous prefix and must go too.
	certify(t, l, 0)
	certify(t, l, 1)
	certify(t, l, 3)

	removed := l.TruncateUncertified()
	if removed != 2 {
		t.Fatalf("removed = %d, want 2", removed)
	}
	if l.NumBlocks() != 2 || l.BufferLen() != 0 || l.NextPos() != 4 {
		t.Fatalf("after truncate: blocks=%d buf=%d next=%d", l.NumBlocks(), l.BufferLen(), l.NextPos())
	}
	if l.CertifiedBlocks() != 2 || l.CertifiedEntries() != 4 {
		t.Fatalf("certified counts = %d/%d", l.CertifiedBlocks(), l.CertifiedEntries())
	}
	if _, ok := l.Cert(3); ok {
		t.Fatal("stranded cert survived truncation")
	}
	if _, err := l.Digest(2); !errors.Is(err, ErrNoSuchBlock) {
		t.Fatalf("digest 2 survived: %v", err)
	}
	// Entries in kept blocks stay replay-protected…
	if _, err := l.Append(entry("c", 1), 0); !errors.Is(err, ErrDuplicateEntry) {
		t.Fatalf("kept entry replayable: %v", err)
	}
	// …while truncated entries (cut and buffered) become acceptable again.
	for _, seq := range []uint64{5, 9} {
		if _, err := l.Append(entry("c", seq), 0); err != nil {
			t.Fatalf("truncated seq %d still refused: %v", seq, err)
		}
	}
}

func TestTruncateUncertifiedMirrorRestartable(t *testing.T) {
	// After truncation a follower must be able to InstallBlock the
	// refetched history: next id and positions line up.
	l := New("edge-1", 2)
	for i := uint64(1); i <= 4; i++ {
		l.Append(entry("c", i), 0)
	}
	l.TryCut(0, false)
	l.TryCut(0, false)
	certify(t, l, 0)
	d1, _ := l.Digest(1)
	blk1, _ := l.Block(1)
	refetch := *blk1
	refetch.Entries = append([]wire.Entry(nil), blk1.Entries...)

	if removed := l.TruncateUncertified(); removed != 1 {
		t.Fatalf("removed = %d", removed)
	}
	if err := l.InstallBlock(&refetch, d1); err != nil {
		t.Fatalf("refetched install: %v", err)
	}
	if l.NumBlocks() != 2 || l.NextPos() != 4 {
		t.Fatalf("after reinstall: blocks=%d next=%d", l.NumBlocks(), l.NextPos())
	}
}

func TestTruncateUncertifiedNothingCertified(t *testing.T) {
	l := New("edge-1", 2)
	l.Append(entry("c", 1), 0)
	l.Append(entry("c", 2), 0)
	l.TryCut(0, false)
	if removed := l.TruncateUncertified(); removed != 1 {
		t.Fatalf("removed = %d", removed)
	}
	if l.NumBlocks() != 0 || l.NextPos() != 0 {
		t.Fatalf("log not empty: blocks=%d next=%d", l.NumBlocks(), l.NextPos())
	}
}
