package workload

import (
	"wedgechain/internal/baseline/cloudonly"
	"wedgechain/internal/baseline/edgebase"
	"wedgechain/internal/client"
	"wedgechain/internal/core"
	"wedgechain/internal/wire"
)

// WedgeConn adapts the WedgeChain client. Writes settle at Phase I commit
// (the paper's client-perceived latency); gets settle when the verified
// response arrives.
type WedgeConn struct {
	*client.Core
}

type wedgeStatus struct{ op *client.Op }

func (s wedgeStatus) Settled() bool {
	return s.op.Done || s.op.Phase >= core.PhaseI
}
func (s wedgeStatus) Err() error { return s.op.Err }

// PutOp implements Conn.
func (w WedgeConn) PutOp(now int64, key, value []byte) (Status, []wire.Envelope) {
	op, envs := w.Put(now, key, value)
	return wedgeStatus{op}, envs
}

// PutBurst implements Conn.
func (w WedgeConn) PutBurst(now int64, keys, values [][]byte) ([]Status, []wire.Envelope) {
	ops, envs := w.PutBatch(now, keys, values)
	sts := make([]Status, len(ops))
	for i, op := range ops {
		sts[i] = wedgeStatus{op}
	}
	return sts, envs
}

// GetOp implements Conn.
func (w WedgeConn) GetOp(now int64, key []byte) (Status, []wire.Envelope) {
	op, envs := w.Get(now, key)
	return wedgeStatus{op}, envs
}

// ShardedConn adapts a sharded WedgeChain client session: puts and gets
// route by key across every shard's edge, and each shard's lazy-verify
// pipeline settles independently.
type ShardedConn struct {
	*client.Sharded
}

// PutOp implements Conn.
func (w ShardedConn) PutOp(now int64, key, value []byte) (Status, []wire.Envelope) {
	op, envs := w.Put(now, key, value)
	return wedgeStatus{op}, envs
}

// PutBurst implements Conn.
func (w ShardedConn) PutBurst(now int64, keys, values [][]byte) ([]Status, []wire.Envelope) {
	ops, envs := w.PutBatch(now, keys, values)
	sts := make([]Status, len(ops))
	for i, op := range ops {
		sts[i] = wedgeStatus{op}
	}
	return sts, envs
}

// GetOp implements Conn.
func (w ShardedConn) GetOp(now int64, key []byte) (Status, []wire.Envelope) {
	op, envs := w.Get(now, key)
	return wedgeStatus{op}, envs
}

// CloudOnlyConn adapts the Cloud-only client.
type CloudOnlyConn struct {
	*cloudonly.Client
}

type coStatus struct{ op *cloudonly.Op }

func (s coStatus) Settled() bool { return s.op.Done }
func (s coStatus) Err() error    { return nil }

// PutOp implements Conn.
func (c CloudOnlyConn) PutOp(now int64, key, value []byte) (Status, []wire.Envelope) {
	op, envs := c.Put(now, key, value)
	return coStatus{op}, envs
}

// PutBurst implements Conn.
func (c CloudOnlyConn) PutBurst(now int64, keys, values [][]byte) ([]Status, []wire.Envelope) {
	ops, envs := c.PutBatch(now, keys, values)
	sts := make([]Status, len(ops))
	for i, op := range ops {
		sts[i] = coStatus{op}
	}
	return sts, envs
}

// GetOp implements Conn.
func (c CloudOnlyConn) GetOp(now int64, key []byte) (Status, []wire.Envelope) {
	op, envs := c.Get(now, key)
	return coStatus{op}, envs
}

// EBConn adapts the Edge-baseline client.
type EBConn struct {
	*edgebase.Client
}

type ebStatus struct{ op *edgebase.Op }

func (s ebStatus) Settled() bool { return s.op.Done }
func (s ebStatus) Err() error    { return s.op.Err }

// PutOp implements Conn.
func (c EBConn) PutOp(now int64, key, value []byte) (Status, []wire.Envelope) {
	op, envs := c.Put(now, key, value)
	return ebStatus{op}, envs
}

// PutBurst implements Conn.
func (c EBConn) PutBurst(now int64, keys, values [][]byte) ([]Status, []wire.Envelope) {
	ops, envs := c.PutBatch(now, keys, values)
	sts := make([]Status, len(ops))
	for i, op := range ops {
		sts[i] = ebStatus{op}
	}
	return sts, envs
}

// GetOp implements Conn.
func (c EBConn) GetOp(now int64, key []byte) (Status, []wire.Envelope) {
	op, envs := c.Get(now, key)
	return ebStatus{op}, envs
}
