// Package workload generates the key-value workloads of the paper's
// evaluation (Section VI) and drives them closed-loop through any of the
// three systems (WedgeChain, Cloud-only, Edge-baseline) over the
// simulator.
//
// The evaluation's client behaviour is: writes are buffered into batches
// of B operations and issued as one burst; reads are interactive, one at a
// time. A Driver alternates write bursts and read runs according to the
// configured mix and records burst latencies, read latencies, and
// throughput in virtual time.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"wedgechain/internal/core"
	"wedgechain/internal/wire"
)

// KeyGen produces workload keys.
type KeyGen interface {
	Next() []byte
}

// UniformKeys draws keys uniformly from a space of N keys.
type UniformKeys struct {
	N   int
	rng *rand.Rand
}

// NewUniformKeys returns a uniform generator over N keys.
func NewUniformKeys(n int, seed int64) *UniformKeys {
	return &UniformKeys{N: n, rng: rand.New(rand.NewSource(seed))}
}

// Next implements KeyGen.
func (u *UniformKeys) Next() []byte { return KeyName(u.rng.Intn(u.N)) }

// ZipfKeys draws keys with Zipfian skew (hot keys dominate), the typical
// IoT sensor-popularity pattern.
type ZipfKeys struct {
	z *rand.Zipf
}

// NewZipfKeys returns a zipf generator over n keys with exponent s.
func NewZipfKeys(n int, s float64, seed int64) *ZipfKeys {
	rng := rand.New(rand.NewSource(seed))
	return &ZipfKeys{z: rand.NewZipf(rng, s, 1, uint64(n-1))}
}

// Next implements KeyGen.
func (z *ZipfKeys) Next() []byte { return KeyName(int(z.z.Uint64())) }

// SeqKeys yields key 0, 1, 2, ... — used for preloading.
type SeqKeys struct{ i int }

// Next implements KeyGen.
func (s *SeqKeys) Next() []byte {
	k := KeyName(s.i)
	s.i++
	return k
}

// KeyName formats key i canonically ("k00001234").
func KeyName(i int) []byte { return []byte(fmt.Sprintf("k%08d", i)) }

// Conn abstracts the three systems' clients behind one key-value surface.
// Status exposes client-perceived completion: for WedgeChain that is
// Phase I commit — the paper's headline latency — while Phase II progress
// is tracked separately by the experiment.
type Conn interface {
	core.Handler
	PutOp(now int64, key, value []byte) (Status, []wire.Envelope)
	// PutBurst submits a whole write batch in one request, the paper's
	// batched submission mode.
	PutBurst(now int64, keys, values [][]byte) ([]Status, []wire.Envelope)
	GetOp(now int64, key []byte) (Status, []wire.Envelope)
}

// Status reports an operation's client-perceived completion.
type Status interface {
	Settled() bool
	Err() error
}

// Config parameterizes a driver.
type Config struct {
	// WritesPerRound is the write burst size (the paper's batch size B).
	WritesPerRound int
	// ReadsPerRound interleaves this many interactive reads per round.
	ReadsPerRound int
	// Rounds bounds the workload.
	Rounds int
	// Keys generates workload keys; Values sizes the payloads.
	Keys      KeyGen
	ValueSize int
	// WarmupRounds are executed but excluded from metrics.
	WarmupRounds int
	// Seed feeds value generation.
	Seed int64
}

// Metrics aggregates a driver's observations (virtual time, nanoseconds).
type Metrics struct {
	BurstLat []int64 // write burst completion latencies, per round
	ReadLat  []int64 // individual read latencies
	StartAt  int64
	EndAt    int64
	Writes   int
	Reads    int
	Failed   int
}

// Throughput returns completed operations per second of virtual time.
func (m *Metrics) Throughput() float64 {
	dur := float64(m.EndAt-m.StartAt) / 1e9
	if dur <= 0 {
		return 0
	}
	return float64(m.Writes+m.Reads) / dur
}

// MeanBurstLatency returns the mean write burst latency in milliseconds.
func (m *Metrics) MeanBurstLatency() float64 { return meanMS(m.BurstLat) }

// MeanReadLatency returns the mean read latency in milliseconds.
func (m *Metrics) MeanReadLatency() float64 { return meanMS(m.ReadLat) }

// P99BurstLatency returns the 99th percentile burst latency (ms).
func (m *Metrics) P99BurstLatency() float64 { return percentileMS(m.BurstLat, 0.99) }

func meanMS(xs []int64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum int64
	for _, x := range xs {
		sum += x
	}
	return float64(sum) / float64(len(xs)) / 1e6
}

func percentileMS(xs []int64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]int64(nil), xs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / 1e6
}

type phase uint8

const (
	phWrites phase = iota
	phReads
	phDone
)

// Driver runs the closed-loop workload. It wraps the system's client
// handler: the simulator delivers messages to the driver, which forwards
// them to the client and issues the next operation as soon as the current
// burst settles.
type Driver struct {
	cfg  Config
	conn Conn
	rng  *rand.Rand

	hold       bool
	round      int
	phase      phase
	burst      []Status
	burstStart int64
	readsLeft  int
	read       Status
	readStart  int64
	started    bool

	m Metrics
}

// NewDriver wraps conn with a closed-loop workload. The driver is created
// held (idle) so experiments can preload data through the same connection;
// Start releases it.
func NewDriver(cfg Config, conn Conn) *Driver {
	if cfg.WritesPerRound < 0 || cfg.ReadsPerRound < 0 {
		panic("workload: negative round sizes")
	}
	return &Driver{cfg: cfg, conn: conn, hold: true, rng: rand.New(rand.NewSource(cfg.Seed + 1))}
}

// Start releases the driver; the next tick or delivery issues the first
// round.
func (d *Driver) Start() { d.hold = false }

// ID implements core.Handler.
func (d *Driver) ID() wire.NodeID { return d.conn.ID() }

// Done reports workload completion.
func (d *Driver) Done() bool { return d.phase == phDone }

// Metrics returns the recorded observations.
func (d *Driver) Metrics() *Metrics { return &d.m }

// Receive implements core.Handler: deliver to the client, then advance the
// closed loop.
func (d *Driver) Receive(now int64, env wire.Envelope) []wire.Envelope {
	outs := d.conn.Receive(now, env)
	return append(outs, d.pump(now)...)
}

// Tick implements core.Handler.
func (d *Driver) Tick(now int64) []wire.Envelope {
	outs := d.conn.Tick(now)
	return append(outs, d.pump(now)...)
}

func (d *Driver) value() []byte {
	v := make([]byte, d.cfg.ValueSize)
	d.rng.Read(v)
	return v
}

func (d *Driver) measuring() bool { return d.round >= d.cfg.WarmupRounds }

// pump advances the closed loop: finish the current burst or read, record
// its latency, and issue the next work item.
func (d *Driver) pump(now int64) []wire.Envelope {
	if d.hold {
		return nil
	}
	var out []wire.Envelope
	for {
		switch d.phase {
		case phDone:
			return out

		case phWrites:
			if d.measuring() && !d.started {
				d.started = true
				d.m.StartAt = now
			}
			if d.burst == nil {
				if d.cfg.WritesPerRound == 0 {
					d.phase = phReads
					d.readsLeft = d.cfg.ReadsPerRound
					continue
				}
				// Issue the whole burst as one batched request.
				d.burstStart = now
				keys := make([][]byte, d.cfg.WritesPerRound)
				values := make([][]byte, d.cfg.WritesPerRound)
				for i := range keys {
					keys[i] = d.cfg.Keys.Next()
					values[i] = d.value()
				}
				sts, envs := d.conn.PutBurst(now, keys, values)
				d.burst = sts
				out = append(out, envs...)
				return out
			}
			for _, st := range d.burst {
				if !st.Settled() {
					return out
				}
			}
			// Burst complete.
			if d.measuring() {
				d.m.BurstLat = append(d.m.BurstLat, now-d.burstStart)
				d.m.Writes += d.cfg.WritesPerRound
				for _, st := range d.burst {
					if st.Err() != nil {
						d.m.Failed++
					}
				}
			}
			d.burst = nil
			d.phase = phReads
			d.readsLeft = d.cfg.ReadsPerRound

		case phReads:
			if d.read != nil {
				if !d.read.Settled() {
					return out
				}
				if d.measuring() {
					d.m.ReadLat = append(d.m.ReadLat, now-d.readStart)
					d.m.Reads++
					if d.read.Err() != nil {
						d.m.Failed++
					}
				}
				d.read = nil
				d.readsLeft--
			}
			if d.readsLeft <= 0 {
				d.round++
				if d.round >= d.cfg.Rounds+d.cfg.WarmupRounds {
					d.phase = phDone
					d.m.EndAt = now
					return out
				}
				d.phase = phWrites
				continue
			}
			if d.measuring() && !d.started {
				d.started = true
				d.m.StartAt = now
			}
			st, envs := d.conn.GetOp(now, d.cfg.Keys.Next())
			d.read = st
			d.readStart = now
			out = append(out, envs...)
			return out
		}
	}
}
