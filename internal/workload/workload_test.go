package workload

import (
	"bytes"
	"testing"

	"wedgechain/internal/sim"
	"wedgechain/internal/wire"
)

func TestKeyGenerators(t *testing.T) {
	u := NewUniformKeys(100, 1)
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		k := u.Next()
		if !bytes.HasPrefix(k, []byte("k")) || len(k) != 9 {
			t.Fatalf("key format: %q", k)
		}
		seen[string(k)] = true
	}
	if len(seen) < 50 {
		t.Fatalf("uniform generator visited only %d/100 keys", len(seen))
	}

	z := NewZipfKeys(1000, 1.2, 1)
	counts := map[string]int{}
	for i := 0; i < 5000; i++ {
		counts[string(z.Next())]++
	}
	if counts[string(KeyName(0))] < 500 {
		t.Fatalf("zipf head key drawn %d times, expected skew", counts[string(KeyName(0))])
	}

	s := &SeqKeys{}
	if string(s.Next()) != "k00000000" || string(s.Next()) != "k00000001" {
		t.Fatal("sequential generator broken")
	}
}

// TestZipfKeysDeterministic pins the property the front-door experiment
// leans on: the same (n, s, seed) triple replays an identical key
// sequence run to run, and a different seed diverges.
func TestZipfKeysDeterministic(t *testing.T) {
	const draws = 2000
	a, b := NewZipfKeys(1000, 1.1, 99), NewZipfKeys(1000, 1.1, 99)
	other := NewZipfKeys(1000, 1.1, 7)
	diverged := false
	for i := 0; i < draws; i++ {
		ka, kb := a.Next(), b.Next()
		if !bytes.Equal(ka, kb) {
			t.Fatalf("same seed diverged at draw %d: %q vs %q", i, ka, kb)
		}
		if !bytes.Equal(ka, other.Next()) {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("different seeds produced identical sequences")
	}
}

func TestMetricsMath(t *testing.T) {
	m := &Metrics{
		BurstLat: []int64{10e6, 20e6, 30e6},
		ReadLat:  []int64{1e6},
		StartAt:  0, EndAt: 2e9,
		Writes: 300, Reads: 100,
	}
	if got := m.MeanBurstLatency(); got != 20 {
		t.Fatalf("mean burst = %v", got)
	}
	if got := m.Throughput(); got != 200 {
		t.Fatalf("throughput = %v", got)
	}
	if got := m.P99BurstLatency(); got != 30 {
		t.Fatalf("p99 = %v", got)
	}
}

// fakeServer acknowledges batches instantly.
type fakeServer struct{}

func (s *fakeServer) ID() wire.NodeID { return "server" }
func (s *fakeServer) Receive(now int64, env wire.Envelope) []wire.Envelope {
	switch m := env.Msg.(type) {
	case *wire.CloudPutBatch:
		var out []wire.Envelope
		for _, e := range m.Entries {
			out = append(out, wire.Envelope{
				From: "server", To: env.From,
				Msg: &wire.CloudPutResponse{Seq: e.Seq, BID: 0, OK: true},
			})
		}
		return out
	case *wire.CloudGetRequest:
		return []wire.Envelope{{From: "server", To: env.From,
			Msg: &wire.CloudGetResponse{ReqID: m.ReqID, Found: true, Value: []byte("v")}}}
	}
	return nil
}
func (s *fakeServer) Tick(now int64) []wire.Envelope { return nil }

// fakeConn implements Conn against the fake server.
type fakeConn struct {
	id    wire.NodeID
	seq   uint64
	reqID uint64
	puts  map[uint64]*fakeStatus
	gets  map[uint64]*fakeStatus
}

type fakeStatus struct{ done bool }

func (s *fakeStatus) Settled() bool { return s.done }
func (s *fakeStatus) Err() error    { return nil }

func newFakeConn() *fakeConn {
	return &fakeConn{id: "c1", puts: map[uint64]*fakeStatus{}, gets: map[uint64]*fakeStatus{}}
}

func (c *fakeConn) ID() wire.NodeID { return c.id }
func (c *fakeConn) Receive(now int64, env wire.Envelope) []wire.Envelope {
	switch m := env.Msg.(type) {
	case *wire.CloudPutResponse:
		if st := c.puts[m.Seq]; st != nil {
			st.done = true
		}
	case *wire.CloudGetResponse:
		if st := c.gets[m.ReqID]; st != nil {
			st.done = true
		}
	}
	return nil
}
func (c *fakeConn) Tick(now int64) []wire.Envelope { return nil }

func (c *fakeConn) PutOp(now int64, key, value []byte) (Status, []wire.Envelope) {
	sts, envs := c.PutBurst(now, [][]byte{key}, [][]byte{value})
	return sts[0], envs
}

func (c *fakeConn) PutBurst(now int64, keys, values [][]byte) ([]Status, []wire.Envelope) {
	batch := &wire.CloudPutBatch{}
	sts := make([]Status, len(keys))
	for i := range keys {
		c.seq++
		st := &fakeStatus{}
		c.puts[c.seq] = st
		sts[i] = st
		batch.Entries = append(batch.Entries, wire.Entry{Client: c.id, Seq: c.seq, Key: keys[i], Value: values[i]})
	}
	return sts, []wire.Envelope{{From: c.id, To: "server", Msg: batch}}
}

func (c *fakeConn) GetOp(now int64, key []byte) (Status, []wire.Envelope) {
	c.reqID++
	st := &fakeStatus{}
	c.gets[c.reqID] = st
	return st, []wire.Envelope{{From: c.id, To: "server", Msg: &wire.CloudGetRequest{Key: key, ReqID: c.reqID}}}
}

func TestDriverRunsMixedRounds(t *testing.T) {
	conn := newFakeConn()
	d := NewDriver(Config{
		WritesPerRound: 5,
		ReadsPerRound:  3,
		Rounds:         4,
		WarmupRounds:   1,
		Keys:           NewUniformKeys(10, 1),
		ValueSize:      8,
	}, conn)

	s := sim.New(sim.Config{
		TickEvery:   1e6,
		DefaultLink: sim.Link{Latency: 2e6},
	})
	s.Add(&fakeServer{})
	s.Add(d)
	if d.Done() {
		t.Fatal("done before start")
	}
	d.Start()
	if !s.RunWhile(func() bool { return !d.Done() }, 60e9) {
		t.Fatal("driver never finished")
	}
	m := d.Metrics()
	// Warmup excluded: 4 measured rounds.
	if m.Writes != 20 || m.Reads != 12 {
		t.Fatalf("writes=%d reads=%d", m.Writes, m.Reads)
	}
	if len(m.BurstLat) != 4 || len(m.ReadLat) != 12 {
		t.Fatalf("burst=%d readlat=%d", len(m.BurstLat), len(m.ReadLat))
	}
	// Burst latency must be at least one round trip (4ms).
	if m.MeanBurstLatency() < 4 {
		t.Fatalf("burst latency = %v ms, below RTT", m.MeanBurstLatency())
	}
	if m.Throughput() <= 0 {
		t.Fatal("no throughput")
	}
}

func TestDriverHeldUntilStart(t *testing.T) {
	conn := newFakeConn()
	d := NewDriver(Config{WritesPerRound: 1, Rounds: 1, Keys: &SeqKeys{}, ValueSize: 1}, conn)
	s := sim.New(sim.Config{TickEvery: 1e6})
	s.Add(&fakeServer{})
	s.Add(d)
	s.RunUntil(50e6)
	if d.Done() || d.Metrics().Writes != 0 {
		t.Fatal("held driver issued work")
	}
	d.Start()
	if !s.RunWhile(func() bool { return !d.Done() }, 10e9) {
		t.Fatal("driver never finished after Start")
	}
}

func TestDriverReadOnly(t *testing.T) {
	conn := newFakeConn()
	d := NewDriver(Config{
		WritesPerRound: 0,
		ReadsPerRound:  10,
		Rounds:         2,
		Keys:           NewUniformKeys(5, 2),
		ValueSize:      1,
	}, conn)
	s := sim.New(sim.Config{TickEvery: 1e6, DefaultLink: sim.Link{Latency: 1e6}})
	s.Add(&fakeServer{})
	s.Add(d)
	d.Start()
	if !s.RunWhile(func() bool { return !d.Done() }, 30e9) {
		t.Fatal("read-only driver never finished")
	}
	m := d.Metrics()
	if m.Reads != 20 || m.Writes != 0 {
		t.Fatalf("reads=%d writes=%d", m.Reads, m.Writes)
	}
}
