package wedgechain

import (
	"fmt"
	"testing"
	"time"
)

// waitPunished polls until the cloud has convicted the edge.
func waitPunished(t *testing.T, c *Cluster, id NodeID) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if reason, banned := c.Punished(id); banned {
			return reason
		}
		if time.Now().After(deadline) {
			t.Fatal("edge never convicted")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFacadePrunedReadsHonest drives pruned reads through the real
// cluster (verify-pool transport): a deep uncompacted L0 window, point
// gets and scans all verify and return correct results.
func TestFacadePrunedReadsHonest(t *testing.T) {
	// L0Threshold 1000 keeps every block uncompacted: all evidence is the
	// L0 window, served pruned.
	c := newTestCluster(t, Config{Edges: 1, BatchSize: 2, L0Threshold: 1000})
	cl, err := c.NewClient("c1", EdgeID(1))
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	for i := 0; i < n; i++ {
		if _, err := cl.Put([]byte(fmt.Sprintf("pk-%03d", i)), []byte(fmt.Sprintf("pv-%03d", i))); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	for _, i := range []int{0, 7, 15} {
		v, found, _, err := cl.Get([]byte(fmt.Sprintf("pk-%03d", i)))
		if err != nil || !found || string(v) != fmt.Sprintf("pv-%03d", i) {
			t.Fatalf("get %d: v=%q found=%v err=%v", i, v, found, err)
		}
	}
	if _, found, _, err := cl.Get([]byte("pk-none")); err != nil || found {
		t.Fatalf("absent key over pruned window: found=%v err=%v", found, err)
	}
	kvs, _, err := cl.Scan([]byte("pk-004"), []byte("pk-008"), 0)
	if err != nil || len(kvs) != 4 {
		t.Fatalf("scan over pruned window: %d kvs, err=%v", len(kvs), err)
	}
}

// TestFacadeFalseExclusionConvicts: omission-via-pruning in the real
// cluster. The edge hides the victim key's block behind its honest
// summary; the get fails verification and the signed response convicts
// the edge at the cloud.
func TestFacadeFalseExclusionConvicts(t *testing.T) {
	victim := []byte("pk-victim")
	c := newTestCluster(t, Config{
		Edges: 1, BatchSize: 2, L0Threshold: 1000,
		EdgeFaults: map[NodeID]*Fault{EdgeID(1): {SummaryFalseExclude: victim}},
	})
	cl, err := c.NewClient("c1", EdgeID(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Put(victim, []byte("precious")); err != nil {
		t.Fatalf("put: %v", err)
	}
	if _, err := cl.Put([]byte("pk-other"), []byte("w")); err != nil {
		t.Fatalf("put: %v", err)
	}
	if _, _, _, err := cl.Get(victim); err == nil {
		t.Fatal("get over a falsely excluded block succeeded")
	}
	t.Logf("convicted: %s", waitPunished(t, c, EdgeID(1)))
}

// TestFacadeTamperedSummaryConvicts: the tampered-summary twin through
// the scan path of the real cluster.
func TestFacadeTamperedSummaryConvicts(t *testing.T) {
	victim := []byte("pk-victim")
	c := newTestCluster(t, Config{
		Edges: 1, BatchSize: 2, L0Threshold: 1000,
		EdgeFaults: map[NodeID]*Fault{EdgeID(1): {SummaryTamperKey: victim}},
	})
	cl, err := c.NewClient("c1", EdgeID(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Put(victim, []byte("precious")); err != nil {
		t.Fatalf("put: %v", err)
	}
	if _, err := cl.Put([]byte("pk-other"), []byte("w")); err != nil {
		t.Fatalf("put: %v", err)
	}
	if _, _, err := cl.Scan([]byte("pk-"), []byte("pk-~"), 0); err == nil {
		t.Fatal("scan over a tampered summary succeeded")
	}
	t.Logf("convicted: %s", waitPunished(t, c, EdgeID(1)))
}
