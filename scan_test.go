package wedgechain

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

// waitMerged polls until every listed edge has performed at least one
// LSMerkle merge, so scans exercise level proofs, not just L0 evidence.
func waitMerged(t *testing.T, c *Cluster, edges ...NodeID) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		merged := true
		for _, id := range edges {
			st, err := c.EdgeStats(id)
			if err != nil {
				t.Fatal(err)
			}
			if st.Merges == 0 {
				merged = false
			}
		}
		if merged {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("edges never merged; test parameters wrong")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestShardedScanGloballyOrdered is the acceptance scenario: a 4-shard
// cluster, keys hash-spread over every edge, and one Scan call returning
// a globally ordered, completeness-verified result whose per-shard proofs
// were each checked client-side.
func TestShardedScanGloballyOrdered(t *testing.T) {
	const shards = 4
	c := newTestCluster(t, Config{Shards: shards, BatchSize: 2, L0Threshold: 2})
	cl, err := c.NewClient("c1", "")
	if err != nil {
		t.Fatal(err)
	}

	const n = 40
	model := map[string]string{}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("scan-%03d", i)
		val := fmt.Sprintf("val-%03d", i)
		model[key] = val
		if _, err := cl.Put([]byte(key), []byte(val)); err != nil {
			t.Fatalf("put %s: %v", key, err)
		}
	}
	// Overwrite a few keys so newest-wins is exercised across shards.
	for _, i := range []int{3, 17, 29} {
		key := fmt.Sprintf("scan-%03d", i)
		val := fmt.Sprintf("val-%03d-new", i)
		model[key] = val
		if _, err := cl.Put([]byte(key), []byte(val)); err != nil {
			t.Fatalf("overwrite %s: %v", key, err)
		}
	}
	waitMerged(t, c, EdgeID(1), EdgeID(2), EdgeID(3), EdgeID(4))

	check := func(start, end []byte, limit int, wantKeys []string) {
		t.Helper()
		kvs, phase, err := cl.Scan(start, end, limit)
		if err != nil {
			t.Fatalf("scan [%q,%q): %v", start, end, err)
		}
		if phase != PhaseII {
			t.Fatalf("scan [%q,%q) phase = %v", start, end, phase)
		}
		if len(kvs) != len(wantKeys) {
			t.Fatalf("scan [%q,%q) limit %d: %d results, want %d", start, end, limit, len(kvs), len(wantKeys))
		}
		for i, kv := range kvs {
			if string(kv.Key) != wantKeys[i] {
				t.Fatalf("result %d = %q, want %q", i, kv.Key, wantKeys[i])
			}
			if string(kv.Value) != model[wantKeys[i]] {
				t.Fatalf("key %q = %q, want %q (newest-wins across shards violated)", kv.Key, kv.Value, model[wantKeys[i]])
			}
			if i > 0 && bytes.Compare(kvs[i-1].Key, kv.Key) >= 0 {
				t.Fatalf("results not globally ordered at %d: %q >= %q", i, kvs[i-1].Key, kv.Key)
			}
		}
	}

	keysIn := func(start, end string, limit int) []string {
		var keys []string
		for i := 0; i < n; i++ {
			k := fmt.Sprintf("scan-%03d", i)
			if start != "" && k < start {
				continue
			}
			if end != "" && k >= end {
				continue
			}
			keys = append(keys, k)
		}
		if limit > 0 && len(keys) > limit {
			keys = keys[:limit]
		}
		return keys
	}

	check([]byte("scan-005"), []byte("scan-025"), 0, keysIn("scan-005", "scan-025", 0))
	check(nil, nil, 0, keysIn("", "", 0))
	check([]byte("scan-030"), nil, 0, keysIn("scan-030", "", 0))
	check(nil, []byte("scan-010"), 0, keysIn("", "scan-010", 0))
	check([]byte("scan-000"), []byte("scan-999"), 7, keysIn("scan-000", "scan-999", 7))

	// A range owned by no written keys is a verified empty result.
	kvs, _, err := cl.Scan([]byte("zz-"), []byte("zz~"), 0)
	if err != nil || len(kvs) != 0 {
		t.Fatalf("empty range: kvs=%v err=%v", kvs, err)
	}
}

// TestShardedScanConvictsByzantineShard runs the omission attack through
// the real cluster (verify-pool transport): the faulty shard's proof
// fails client-side verification, the signed response convicts that edge
// at the cloud, and sibling shards stay in good standing.
func TestShardedScanConvictsByzantineShard(t *testing.T) {
	const shards = 2
	// Find a key for shard 0 so the fault lands on edge-1's merged pages.
	victims := keysForShard(t, shards, 0, 8)
	c := newTestCluster(t, Config{
		Shards:      shards,
		BatchSize:   2,
		L0Threshold: 2,
		EdgeFaults:  map[NodeID]*Fault{EdgeID(1): {ScanOmitKey: victims[0]}},
	})
	cl, err := c.NewClient("c1", "")
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range victims {
		if _, err := cl.Put(k, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	// Spread a few keys on the honest shard too.
	for _, k := range keysForShard(t, shards, 1, 8) {
		if _, err := cl.Put(k, []byte("w")); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	waitMerged(t, c, EdgeID(1), EdgeID(2))

	if _, _, err := cl.Scan(nil, nil, 0); err == nil {
		t.Fatal("scan over a byzantine shard succeeded")
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if reason, banned := c.Punished(EdgeID(1)); banned {
			t.Logf("convicted: %s", reason)
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("byzantine shard never convicted")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, banned := c.Punished(EdgeID(2)); banned {
		t.Fatal("honest sibling shard was punished")
	}
}
