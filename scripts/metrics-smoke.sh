#!/bin/sh
# metrics-smoke: build the binaries, run a live cloud + edge pair with
# -metrics-addr, push one write through the client, then scrape both
# /metrics endpoints and fail unless every core series is present (and
# pprof answers a short CPU profile). This is the CI check that the
# telemetry acceptance criteria hold on the real TCP deployment, not
# just the in-process façade.
set -eu

cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
CLOUD_PID=""
EDGE_PID=""
cleanup() {
    [ -n "$EDGE_PID" ] && kill "$EDGE_PID" 2>/dev/null || true
    [ -n "$CLOUD_PID" ] && kill "$CLOUD_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "metrics-smoke: building binaries"
go build -o "$WORK/wedge-cloud" ./cmd/wedge-cloud
go build -o "$WORK/wedge-edge" ./cmd/wedge-edge
go build -o "$WORK/wedge-client" ./cmd/wedge-client

CLOUD_PORT=19001
EDGE_PORT=19002
CLIENT_PORT=19003
CLOUD_METRICS=127.0.0.1:19091
EDGE_METRICS=127.0.0.1:19092

"$WORK/wedge-cloud" -listen ":$CLOUD_PORT" \
    -peers "edge-1=localhost:$EDGE_PORT,c1=localhost:$CLIENT_PORT" \
    -metrics-addr "$CLOUD_METRICS" >"$WORK/cloud.log" 2>&1 &
CLOUD_PID=$!
"$WORK/wedge-edge" -id edge-1 -listen ":$EDGE_PORT" \
    -peers "cloud=localhost:$CLOUD_PORT,c1=localhost:$CLIENT_PORT" \
    -batch 1 -metrics-addr "$EDGE_METRICS" >"$WORK/edge.log" 2>&1 &
EDGE_PID=$!

wait_http() {
    i=0
    while ! curl -fsS "$1" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 50 ]; then
            echo "metrics-smoke: $1 never came up" >&2
            cat "$WORK"/*.log >&2
            exit 1
        fi
        sleep 0.1
    done
}
wait_http "http://$CLOUD_METRICS/healthz"
wait_http "http://$EDGE_METRICS/healthz"

echo "metrics-smoke: writing through the client"
"$WORK/wedge-client" -id c1 -listen ":$CLIENT_PORT" \
    -peers "cloud=localhost:$CLOUD_PORT,edge-1=localhost:$EDGE_PORT" \
    -edge edge-1 -wait2 put smoke-key smoke-value >"$WORK/client.log" 2>&1

curl -fsS "http://$EDGE_METRICS/metrics" >"$WORK/edge.metrics"
curl -fsS "http://$CLOUD_METRICS/metrics" >"$WORK/cloud.metrics"

require() {
    if ! grep -q "$2" "$WORK/$1.metrics"; then
        echo "metrics-smoke: FAIL — $1 /metrics missing series: $2" >&2
        echo "--- $1 /metrics ---" >&2
        cat "$WORK/$1.metrics" >&2
        exit 1
    fi
}

# Edge: write path, trust lag, transport.
require edge 'wedge_edge_writes_total{node="edge-1"} [1-9]'
require edge 'wedge_edge_blocks_cut_total{node="edge-1"} [1-9]'
require edge 'wedge_edge_certified_blocks_total{node="edge-1"} [1-9]'
require edge 'wedge_trust_lag_seconds_count{node="edge-1",stage="edge"} [1-9]'
require edge 'wedge_transport_frames_sent_total{node="edge-1"} [1-9]'
require edge 'wedge_transport_lane_drops_total{node="edge-1"}'
# Cloud: certification, proof cache, disputes by verdict.
require cloud 'wedge_certifies_total{node="cloud"} [1-9]'
require cloud 'wedge_certify_seconds_count{node="cloud"} [1-9]'
require cloud 'wedge_cloud_proof_cache_hits_total{node="cloud"}'
require cloud 'wedge_disputes_total{node="cloud",verdict="guilty"}'
require cloud 'wedge_disputes_total{node="cloud",verdict="not_guilty"}'
require cloud 'wedge_transport_frames_sent_total{node="cloud"} [1-9]'

echo "metrics-smoke: profiling the live edge (1s)"
curl -fsS -o "$WORK/profile.pb.gz" "http://$EDGE_METRICS/debug/pprof/profile?seconds=1"
[ -s "$WORK/profile.pb.gz" ] || { echo "metrics-smoke: empty pprof profile" >&2; exit 1; }

echo "metrics-smoke: OK"
