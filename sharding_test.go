package wedgechain

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"wedgechain/internal/shard"
)

// keysForShard returns count distinct keys owned by shard idx of shards.
func keysForShard(t *testing.T, shards, idx, count int) [][]byte {
	t.Helper()
	var out [][]byte
	for i := 0; len(out) < count; i++ {
		k := []byte(fmt.Sprintf("shardkey-%d", i))
		if shard.Of(k, shards) == idx {
			out = append(out, k)
		}
		if i > 100000 {
			t.Fatalf("could not find %d keys for shard %d/%d", count, idx, shards)
		}
	}
	return out
}

func TestShardedClusterRoutesAcrossAllEdges(t *testing.T) {
	const shards = 4
	c := newTestCluster(t, Config{Shards: shards, BatchSize: 1})
	cl, err := c.NewClient("c1", "")
	if err != nil {
		t.Fatal(err)
	}
	if cl.Shards() != shards {
		t.Fatalf("Shards() = %d, want %d", cl.Shards(), shards)
	}
	if got := len(c.ShardMap().Edges); got != shards {
		t.Fatalf("shard map spans %d edges, want %d", got, shards)
	}

	var receipts []*Receipt
	for i := 0; i < 32; i++ {
		key := []byte(fmt.Sprintf("shardkey-%d", i))
		want := EdgeID(shard.Of(key, shards) + 1)
		if got := cl.EdgeFor(key); got != want {
			t.Fatalf("EdgeFor(%q) = %q, want %q", key, got, want)
		}
		r, err := cl.Put(key, []byte(fmt.Sprintf("v%d", i)))
		if err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		if r.Edge() != want {
			t.Fatalf("receipt %d landed on %q, want %q", i, r.Edge(), want)
		}
		receipts = append(receipts, r)
	}
	for i, r := range receipts {
		if err := r.WaitPhaseII(10 * time.Second); err != nil {
			t.Fatalf("phase II for put %d: %v", i, err)
		}
	}
	// Deterministic routing must have spread writes over every edge,
	// observable in each edge's own counters.
	for i := 1; i <= shards; i++ {
		st, err := c.EdgeStats(EdgeID(i))
		if err != nil {
			t.Fatal(err)
		}
		if st.Writes == 0 {
			t.Errorf("edge-%d received no writes; routing left a shard idle", i)
		}
		if st.BlocksCut == 0 {
			t.Errorf("edge-%d cut no blocks", i)
		}
	}
	// Reads route back to the owning shard and verify end to end.
	for i := 0; i < 32; i++ {
		key := []byte(fmt.Sprintf("shardkey-%d", i))
		got, found, _, err := cl.Get(key)
		if err != nil || !found {
			t.Fatalf("get %q: found=%v err=%v", key, found, err)
		}
		if want := fmt.Sprintf("v%d", i); string(got) != want {
			t.Fatalf("get %q = %q, want %q", key, got, want)
		}
	}
}

func TestShardedInterleavedWritersIsolatePerShardState(t *testing.T) {
	const shards = 2
	c := newTestCluster(t, Config{Shards: shards, BatchSize: 2, FlushEvery: 20 * time.Millisecond})
	c1, err := c.NewClient("c1", "")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := c.NewClient("c2", "")
	if err != nil {
		t.Fatal(err)
	}
	keys0 := keysForShard(t, shards, 0, 8)
	keys1 := keysForShard(t, shards, 1, 8)

	// Interleave writes from two sessions across both shards.
	var receipts []*Receipt
	for i := 0; i < 8; i++ {
		for _, w := range []struct {
			cl  *Client
			key []byte
		}{
			{c1, keys0[i]}, {c2, keys1[i]},
		} {
			r, err := w.cl.Put(w.key, []byte(fmt.Sprintf("%s-v%d", w.cl.ID(), i)))
			if err != nil {
				t.Fatal(err)
			}
			receipts = append(receipts, r)
		}
	}
	for i, r := range receipts {
		if err := r.WaitPhaseII(10 * time.Second); err != nil {
			t.Fatalf("receipt %d: %v", i, err)
		}
	}
	// Cross-session reads see the other writer's data on both shards.
	for i := 0; i < 8; i++ {
		got, found, _, err := c2.Get(keys0[i])
		if err != nil || !found {
			t.Fatalf("c2 get shard-0 key: found=%v err=%v", found, err)
		}
		if want := fmt.Sprintf("c1-v%d", i); string(got) != want {
			t.Fatalf("c2 read %q, want %q", got, want)
		}
	}
}

func TestShardedReadUnaffectedBySiblingShardBacklog(t *testing.T) {
	const shards = 2
	// edge-2's certifications are dropped: its shard accumulates Phase I
	// operations that never reach Phase II. ProofTimeout is long so the
	// backlog persists for the whole test.
	c := newTestCluster(t, Config{
		Shards:       shards,
		BatchSize:    1,
		ProofTimeout: time.Minute,
		EdgeFaults: map[NodeID]*Fault{
			EdgeID(2): {DropCertify: true},
		},
	})
	cl, err := c.NewClient("c1", "")
	if err != nil {
		t.Fatal(err)
	}
	keyA := keysForShard(t, shards, 0, 1)[0]
	keyB := keysForShard(t, shards, 1, 4)

	rA, err := cl.Put(keyA, []byte("healthy"))
	if err != nil {
		t.Fatal(err)
	}
	if err := rA.WaitPhaseII(10 * time.Second); err != nil {
		t.Fatalf("healthy shard phase II: %v", err)
	}

	// Pile a backlog onto shard 1: Phase I commits fine, Phase II never
	// arrives.
	var backlog []*Receipt
	for i, k := range keyB {
		r, err := cl.Put(k, []byte(fmt.Sprintf("stuck-%d", i)))
		if err != nil {
			t.Fatalf("put to faulty shard should still Phase-I commit: %v", err)
		}
		backlog = append(backlog, r)
	}
	pending, err := cl.Pending()
	if err != nil {
		t.Fatal(err)
	}
	if pending[EdgeID(2)] == 0 {
		t.Fatalf("expected a backlog on edge-2, pending = %v", pending)
	}
	if pending[EdgeID(1)] != 0 {
		t.Fatalf("healthy shard shows backlog: %v", pending)
	}

	// The healthy shard's read path is untouched by the sibling backlog.
	start := time.Now()
	got, found, phase, err := cl.Get(keyA)
	if err != nil || !found {
		t.Fatalf("get on healthy shard: found=%v err=%v", found, err)
	}
	if string(got) != "healthy" {
		t.Fatalf("get = %q", got)
	}
	if phase != PhaseII {
		t.Fatalf("healthy shard get phase = %v, want PhaseII", phase)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("healthy-shard get took %v with sibling backlog", elapsed)
	}
	for _, r := range backlog {
		if r.Phase() >= PhaseII {
			t.Fatal("faulty shard op reached Phase II despite dropped certification")
		}
	}
}

func TestShardedConvictionLeavesSiblingsLive(t *testing.T) {
	const shards = 4
	const bad = 3 // edge-3 tampers; shards 0,1,3 stay honest
	c := newTestCluster(t, Config{
		Shards:       shards,
		BatchSize:    2,
		ProofTimeout: 200 * time.Millisecond,
		EdgeFaults: map[NodeID]*Fault{
			EdgeID(bad): {TamperAddVictim: "victim"},
		},
	})
	cl, err := c.NewClient("victim", "")
	if err != nil {
		t.Fatal(err)
	}

	// One write per healthy shard commits through Phase II.
	for _, idx := range []int{0, 1, 3} {
		key := keysForShard(t, shards, idx, 1)[0]
		r, err := cl.Put(key, []byte("ok"))
		if err != nil {
			t.Fatal(err)
		}
		if err := r.WaitPhaseII(10 * time.Second); err != nil {
			t.Fatalf("healthy shard %d phase II: %v", idx, err)
		}
	}

	// The write routed to the tampering shard is convicted by its own
	// evidence.
	badKey := keysForShard(t, shards, bad-1, 1)[0]
	r, err := cl.Put(badKey, []byte("precious"))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.WaitPhaseII(15 * time.Second); !errors.Is(err, ErrEdgeLied) {
		t.Fatalf("tampering shard err = %v, want ErrEdgeLied", err)
	}
	deadline := time.After(10 * time.Second)
	for {
		if _, punished := c.Punished(EdgeID(bad)); punished {
			break
		}
		select {
		case <-deadline:
			t.Fatal("tampering shard never punished")
		case <-time.After(20 * time.Millisecond):
		}
	}
	if len(c.VerdictsFor(EdgeID(bad))) == 0 {
		t.Fatal("no verdicts against the tampering shard")
	}
	if len(c.Verdicts()) == 0 {
		t.Fatal("no verdicts recorded")
	}
	// The client saw the guilty verdict, so further operations on the
	// convicted shard fail immediately — no proof-timeout wait.
	start := time.Now()
	if _, err := cl.Put(keysForShard(t, shards, bad-1, 2)[1], []byte("late")); !errors.Is(err, ErrEdgeBanned) {
		t.Fatalf("put to convicted shard: err = %v, want ErrEdgeBanned", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("banned-shard put took %v; expected immediate failure", elapsed)
	}
	// The conviction is scoped: sibling shards have clean records and
	// keep committing.
	for _, idx := range []int{0, 1, 3} {
		if got := c.VerdictsFor(EdgeID(idx + 1)); len(got) != 0 {
			t.Fatalf("honest edge-%d has verdicts: %v", idx+1, got)
		}
		if _, punished := c.Punished(EdgeID(idx + 1)); punished {
			t.Fatalf("honest edge-%d punished", idx+1)
		}
		key := keysForShard(t, shards, idx, 2)[1]
		r, err := cl.Put(key, []byte("after-conviction"))
		if err != nil {
			t.Fatalf("shard %d write after sibling conviction: %v", idx, err)
		}
		if err := r.WaitPhaseII(10 * time.Second); err != nil {
			t.Fatalf("shard %d phase II after sibling conviction: %v", idx, err)
		}
	}
}

func TestLateJoinerLearnsExistingConviction(t *testing.T) {
	const shards = 2
	const bad = 2
	c := newTestCluster(t, Config{
		Shards:       shards,
		BatchSize:    2,
		ProofTimeout: 200 * time.Millisecond,
		EdgeFaults: map[NodeID]*Fault{
			EdgeID(bad): {TamperAddVictim: "victim"},
		},
	})
	victim, err := c.NewClient("victim", "")
	if err != nil {
		t.Fatal(err)
	}
	badKey := keysForShard(t, shards, bad-1, 1)[0]
	r, err := victim.Put(badKey, []byte("bait"))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.WaitPhaseII(15 * time.Second); !errors.Is(err, ErrEdgeLied) {
		t.Fatalf("err = %v, want ErrEdgeLied", err)
	}
	deadline := time.After(10 * time.Second)
	for {
		if _, punished := c.Punished(EdgeID(bad)); punished {
			break
		}
		select {
		case <-deadline:
			t.Fatal("edge never punished")
		case <-time.After(20 * time.Millisecond):
		}
	}

	// A session created after the conviction is seeded with the verdict:
	// its writes to the banned shard fail fast (the verdict replay is
	// asynchronous, so allow a brief settling window).
	late, err := c.NewClient("late-joiner", "")
	if err != nil {
		t.Fatal(err)
	}
	lateKeys := keysForShard(t, shards, bad-1, 50)
	deadline = time.After(10 * time.Second)
	for i := 0; ; i++ {
		_, err := late.Put(lateKeys[i%len(lateKeys)], []byte("late"))
		if errors.Is(err, ErrEdgeBanned) {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("late joiner never learned of the conviction (last err: %v)", err)
		case <-time.After(20 * time.Millisecond):
		}
	}
	// The healthy shard still serves the late joiner.
	okKey := keysForShard(t, shards, 2-bad, 1)[0] // the other shard
	r2, err := late.Put(okKey, []byte("fine"))
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.WaitPhaseII(10 * time.Second); err != nil {
		t.Fatalf("healthy shard for late joiner: %v", err)
	}
}

func TestNewClientEdgeBindingRules(t *testing.T) {
	single := newTestCluster(t, Config{Edges: 2, BatchSize: 1})
	if _, err := single.NewClient("c1", "edge-99"); err == nil {
		t.Fatal("unknown edge accepted")
	}
	cl, err := single.NewClient("c2", "")
	if err != nil {
		t.Fatal(err)
	}
	if cl.Shards() != 1 || cl.HomeEdge() != EdgeID(1) {
		t.Fatalf("default binding = %d shards, home %q", cl.Shards(), cl.HomeEdge())
	}
	if _, err := single.NewClient("c2", EdgeID(1)); err == nil {
		t.Fatal("duplicate client accepted")
	}
	if _, err := single.EdgeStats("edge-99"); err == nil {
		t.Fatal("EdgeStats accepted unknown edge")
	}

	sharded := newTestCluster(t, Config{Shards: 2, BatchSize: 1})
	scl, err := sharded.NewClient("c1", EdgeID(1)) // binding allowed, routing wins
	if err != nil {
		t.Fatal(err)
	}
	if scl.Shards() != 2 {
		t.Fatalf("sharded session spans %d shards, want 2", scl.Shards())
	}
	if _, err := sharded.NewClient("c2", "edge-99"); err == nil {
		t.Fatal("unknown edge accepted on sharded cluster")
	}
}

func TestShardedLogAPIUsesHomeShard(t *testing.T) {
	c := newTestCluster(t, Config{Shards: 2, BatchSize: 1})
	cl, err := c.NewClient("c1", "")
	if err != nil {
		t.Fatal(err)
	}
	home := cl.HomeEdge()
	if home != EdgeID(shard.Of([]byte("c1"), 2)+1) {
		t.Fatalf("home edge = %q", home)
	}
	r, err := cl.Add([]byte("log-entry"))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.WaitPhaseII(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if r.Edge() != home {
		t.Fatalf("log receipt landed on %q, want home %q", r.Edge(), home)
	}
	blk, phase, err := cl.ReadFrom(r.Edge(), r.BID(), 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if phase != PhaseII || blk == nil || len(blk.Entries) != 1 {
		t.Fatalf("read from home shard: phase=%v blk=%+v", phase, blk)
	}
	if _, _, err := cl.ReadFrom("edge-99", 0, time.Second); err == nil {
		t.Fatal("ReadFrom accepted an edge outside the shard map")
	}
	// Plain Read addresses the same home-shard log.
	blk2, _, err := cl.Read(r.BID(), 10*time.Second)
	if err != nil || blk2 == nil {
		t.Fatalf("home read: %v", err)
	}
}
