// Package wedgechain is a trusted edge-cloud data store with asynchronous
// (lazy) trust — a from-scratch implementation of "WedgeChain: A Trusted
// Edge-Cloud Store With Asynchronous (Lazy) Trust" (ICDE 2021).
//
// WedgeChain spans untrusted edge nodes and a trusted cloud node. Writes
// commit at the nearby edge immediately (Phase I commit: the edge's signed
// response is evidence that convicts it if it lies) and are certified
// asynchronously by the cloud (Phase II commit: the cloud signs the block
// digest, and no two clients can ever observe conflicting Phase II state).
// Certification is data-free — only digests cross the expensive edge-cloud
// link. A trusted index, LSMerkle (LSM tree × Merkle tree), serves
// key-value gets from the edge with cryptographic proofs.
//
// This package is the embedding façade: it assembles a full cluster
// (cloud, edges, clients) over an in-process transport and exposes a
// synchronous client API. The building blocks live under internal/: the
// protocol state machines (internal/edge, internal/cloud,
// internal/client), the lazy-certification core (internal/core), the
// LSMerkle structure (internal/mlsm), the discrete-event evaluation
// substrate (internal/sim, internal/bench), and the paper's baselines
// (internal/baseline). The cmd/ binaries deploy the same state machines
// over TCP.
//
// Quickstart:
//
//	cluster, _ := wedgechain.NewCluster(wedgechain.Config{Edges: 1, BatchSize: 4})
//	defer cluster.Close()
//	c, _ := cluster.NewClient("sensor-1", "edge-1")
//	receipt, _ := c.Add([]byte("reading: 21.7C"))      // Phase I commit
//	_ = receipt.WaitPhaseII(5 * time.Second)            // cloud certified
//	val, found, _, _ := c.Get([]byte("some-key"))       // verified read
//	_ = val
//	_ = found
package wedgechain

import (
	"fmt"
	"time"

	"wedgechain/internal/core"
	"wedgechain/internal/edge"
	"wedgechain/internal/faultnet"
	"wedgechain/internal/obs"
	"wedgechain/internal/wire"
)

// Phase re-exports the commit phase vocabulary.
type Phase = core.Phase

// Commit phases.
const (
	PhaseNone = core.PhaseNone
	PhaseI    = core.PhaseI
	PhaseII   = core.PhaseII
)

// Fault re-exports the byzantine fault-injection hooks of the edge node,
// letting applications and examples demonstrate detection and punishment.
type Fault = edge.Fault

// ChaosNet re-exports the deterministic chaos network: seeded, per-link
// fault schedules (drop, delay, duplicate, partition) applied to every
// frame the cluster transport carries. Build one with NewChaos, add rules
// or partitions, and pass it as Config.Chaos.
type ChaosNet = faultnet.Net

// ChaosRule re-exports one chaos schedule entry: a (from, to, window)
// match plus the link fault rates to apply.
type ChaosRule = faultnet.Rule

// LinkFaults re-exports the per-link fault rates (drop and duplicate
// probabilities, delay bounds) a ChaosRule applies.
type LinkFaults = faultnet.LinkFaults

// NewChaos constructs a chaos network whose schedules derive entirely
// from seed — the same seed replays the same faults.
func NewChaos(seed int64) *ChaosNet { return faultnet.New(seed) }

// NodeID re-exports node identities.
type NodeID = wire.NodeID

// Block re-exports the log block type returned by reads.
type Block = wire.Block

// KV re-exports the key-version-value record returned by verified scans.
type KV = wire.KV

// Verdict re-exports the cloud's dispute ruling.
type Verdict = wire.Verdict

// Config parameterizes a cluster.
type Config struct {
	// Edges is the number of edge nodes ("edge-1".."edge-N"). Each edge
	// owns one partition; clients bind to a single edge (Section III)
	// unless Shards spreads the keyspace across several of them.
	Edges int
	// Shards is the number of keyspace shards. When > 1, the first
	// Shards edges each own a hash partition of the keyspace (Edges is
	// raised to Shards if smaller), the cloud signs an explicit shard
	// map, and NewClient defaults to a shard-routed session that
	// multiplexes every shard: Put/Get route by key, while the
	// position-based log API (Add, Read, Reserve) binds to the session's
	// home shard. Each shard keeps its own log, LSMerkle index, and
	// lazy-certification pipeline, so a convicted shard never disturbs
	// its siblings. 0 or 1 keeps the paper's single-partition deployment.
	Shards int
	// ReplicasPerShard sizes each edge's replica group: one leader plus
	// ReplicasPerShard-1 followers named "edge-N.r1", "edge-N.r2", …
	// (FollowerID). Followers mirror the leader's frozen-block log and
	// audit it against the cloud's certificates; the cloud tracks
	// liveness through signed heartbeats and — on leader crash,
	// certification stall, or conviction — signs a leadership transfer
	// promoting the follower with the longest certified prefix, so the
	// shard keeps serving without an outage. 0 or 1 keeps unreplicated
	// shards. Follower faults inject through EdgeFaults keyed by the
	// follower id.
	ReplicasPerShard int
	// LeaseTimeout is how long the cloud tolerates leader-heartbeat
	// silence before transferring leadership (default 1s; replicated
	// shards only).
	LeaseTimeout time.Duration
	// CertTimeout is how long a replicated-but-uncertified backlog may
	// stall before the cloud transfers leadership (default 3s).
	CertTimeout time.Duration
	// HeartbeatEvery overrides the replica heartbeat period (default
	// LeaseTimeout/4; replicated shards only). Must stay shorter than
	// LeaseTimeout or a live leader would look dead to the cloud.
	HeartbeatEvery time.Duration
	// BatchSize is the entries per block (default 100).
	BatchSize int
	// FlushEvery force-cuts partial blocks after this idle duration
	// (default 50ms; 0 keeps the default — use NoFlush to disable).
	FlushEvery time.Duration
	// NoFlush disables partial-block flushing.
	NoFlush bool
	// L0Threshold, LevelThresholds and PageCap configure LSMerkle
	// (defaults: 10, [10, 100, 1000], BatchSize).
	L0Threshold     int
	LevelThresholds []int
	PageCap         int
	// GossipEvery is the cloud's omission-detection gossip period
	// (default 1s; 0 keeps the default — use NoGossip to disable).
	GossipEvery time.Duration
	NoGossip    bool
	// ProofTimeout is how long clients wait for Phase II before filing
	// a dispute (default 10s).
	ProofTimeout time.Duration
	// FreshnessWindow bounds get staleness (Section V-D); 0 disables.
	FreshnessWindow time.Duration
	// SessionConsistency enables the paper's clock-free alternative to
	// the freshness window (Section V-D): clients remember the newest
	// snapshot they observed and reject any get served from an older
	// one, yielding monotonic reads.
	SessionConsistency bool
	// RetryEvery enables client transport retries: an operation the edge
	// never acknowledged is re-sent with exponential backoff and jitter,
	// and settles with an unavailable error after MaxAttempts total
	// sends. 0 disables — unanswered ops then wait out the proof timeout.
	RetryEvery time.Duration
	// MaxAttempts bounds total sends per operation when RetryEvery > 0
	// (default 4, counting the initial send).
	MaxAttempts int
	// MaxUncertified caps a leader's uncertified block backlog: past the
	// cap new writes are shed (not acknowledged) until certification
	// catches up, turning a degraded cloud link into bounded
	// backpressure instead of an unbounded Phase II promise. Shed writes
	// are answered with a signed overload signal carrying a retry-after
	// hint; clients pace their re-sends by it and surface ErrOverloaded
	// if the edge never reopens. 0 disables.
	MaxUncertified int
	// CertWorkers sizes the cloud's certification precheck pool: edge
	// signature checks and full-data digest recomputes fan out to workers
	// (per-chain FIFO) while the serial apply stage stays on the cloud's
	// node goroutine. 0 keeps prechecks inline.
	CertWorkers int
	// CertBatch, when > 1, amortizes certification in both directions:
	// edges ship up to CertBatch contiguous cut blocks per signed certify
	// request, and the cloud covers contiguous certified runs with one
	// batched certificate signature. 0 or 1 keeps per-block certification.
	CertBatch int
	// AuditEvery paces the cloud's background anti-entropy auditor, which
	// recomputes Merkle roots over signed merge checkpoints and flags any
	// mismatch on wedge_audit_mismatches_total. 0 disables.
	AuditEvery time.Duration
	// LightVerify switches client sessions into light mode by default:
	// a get response is accepted on the edge's signature plus the
	// cloud-signed gossiped frontier, and only a seeded random sample of
	// responses (1 in VerifySample) pays for full structural proof
	// verification. A sampled lie convicts exactly as in full mode — the
	// lazy-trust guarantee is amortized, not weakened. Per-session
	// overrides go through NewClientWith.
	LightVerify bool
	// VerifySample is light mode's audit-rate denominator (default 16;
	// 1 audits every response). Ignored unless LightVerify or a
	// per-session Light option is set.
	VerifySample int
	// Latency injects one-way delay between any two nodes; nil = none.
	// Use it to emulate WAN topologies in-process.
	Latency func(from, to NodeID) time.Duration
	// Chaos, when set, subjects every frame the in-process transport
	// carries to the chaos network's seeded fault schedules — drops,
	// delays, duplicates and partitions per link. Combine with
	// RetryEvery, MaxUncertified and replicated shards to exercise the
	// healing paths; see internal/integration/chaos_test.go.
	Chaos *ChaosNet
	// EdgeFaults makes selected edges byzantine (for demonstrations and
	// tests of the detect-and-punish machinery).
	EdgeFaults map[NodeID]*Fault
	// Metrics is the observability registry every node in the cluster
	// registers its wedge_* series into — scrape it with obs.StartServer
	// or embed its snapshot via Cluster.Metrics(). Nil gets a private
	// per-cluster registry, so instrumentation (including the trust-lag
	// histograms) is always on and Cluster.Metrics() always works.
	Metrics *obs.Registry
}

func (c *Config) fill() {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Edges < c.Shards {
		c.Edges = c.Shards
	}
	if c.LeaseTimeout <= 0 {
		c.LeaseTimeout = time.Second
	}
	if c.CertTimeout <= 0 {
		c.CertTimeout = 3 * time.Second
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 100
	}
	if c.FlushEvery <= 0 {
		c.FlushEvery = 50 * time.Millisecond
	}
	if c.NoFlush {
		c.FlushEvery = 0
	}
	if c.L0Threshold <= 0 {
		c.L0Threshold = 10
	}
	if len(c.LevelThresholds) == 0 {
		c.LevelThresholds = []int{10, 100, 1000}
	}
	if c.PageCap <= 0 {
		c.PageCap = c.BatchSize
	}
	if c.GossipEvery <= 0 {
		c.GossipEvery = time.Second
	}
	if c.NoGossip {
		c.GossipEvery = 0
	}
	if c.ProofTimeout <= 0 {
		c.ProofTimeout = 10 * time.Second
	}
	if c.LightVerify && c.VerifySample <= 0 {
		c.VerifySample = 16
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
}

// Validate rejects configurations fill() cannot repair — combinations
// that would construct a cluster which silently misbehaves. NewCluster
// calls it before applying defaults.
func (c *Config) Validate() error {
	if c.ReplicasPerShard < 0 {
		return fmt.Errorf("wedgechain: ReplicasPerShard must be >= 0, got %d", c.ReplicasPerShard)
	}
	if c.ReplicasPerShard > 1 && c.CertTimeout < 0 {
		return fmt.Errorf("wedgechain: replicated shards require a certification-stall timeout; CertTimeout %v disables the detector that replaces a leader which replicates but never certifies", c.CertTimeout)
	}
	for _, d := range []struct {
		name string
		v    time.Duration
	}{
		{"LeaseTimeout", c.LeaseTimeout},
		{"CertTimeout", c.CertTimeout},
		{"HeartbeatEvery", c.HeartbeatEvery},
		{"FlushEvery", c.FlushEvery},
		{"GossipEvery", c.GossipEvery},
		{"ProofTimeout", c.ProofTimeout},
		{"FreshnessWindow", c.FreshnessWindow},
		{"RetryEvery", c.RetryEvery},
		{"AuditEvery", c.AuditEvery},
	} {
		if d.v < 0 {
			return fmt.Errorf("wedgechain: %s must not be negative, got %v", d.name, d.v)
		}
	}
	if c.MaxAttempts < 0 {
		return fmt.Errorf("wedgechain: MaxAttempts must be >= 0, got %d", c.MaxAttempts)
	}
	if c.MaxUncertified < 0 {
		return fmt.Errorf("wedgechain: MaxUncertified must be >= 0, got %d", c.MaxUncertified)
	}
	if c.VerifySample < 0 {
		return fmt.Errorf("wedgechain: VerifySample must be >= 0, got %d", c.VerifySample)
	}
	if c.CertWorkers < 0 {
		return fmt.Errorf("wedgechain: CertWorkers must be >= 0, got %d", c.CertWorkers)
	}
	if c.CertBatch < 0 {
		return fmt.Errorf("wedgechain: CertBatch must be >= 0, got %d", c.CertBatch)
	}
	lease := c.LeaseTimeout
	if lease <= 0 {
		lease = time.Second
	}
	if c.HeartbeatEvery > 0 && c.HeartbeatEvery >= lease {
		return fmt.Errorf("wedgechain: HeartbeatEvery (%v) must be shorter than LeaseTimeout (%v) — a live leader would miss its lease on schedule alone", c.HeartbeatEvery, lease)
	}
	return nil
}
