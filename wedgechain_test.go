package wedgechain

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"
)

func newTestCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestClusterAddAndPhaseII(t *testing.T) {
	c := newTestCluster(t, Config{Edges: 1, BatchSize: 2})
	c1, err := c.NewClient("c1", EdgeID(1))
	if err != nil {
		t.Fatal(err)
	}
	c2, err := c.NewClient("c2", EdgeID(1))
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan *Receipt, 1)
	go func() {
		r, err := c1.Add([]byte("hello"))
		if err != nil {
			t.Error(err)
		}
		done <- r
	}()
	r2, err := c2.Add([]byte("world"))
	if err != nil {
		t.Fatal(err)
	}
	r1 := <-done
	if err := r1.WaitPhaseII(10 * time.Second); err != nil {
		t.Fatalf("r1 WaitPhaseII: %v", err)
	}
	if err := r2.WaitPhaseII(10 * time.Second); err != nil {
		t.Fatalf("r2 WaitPhaseII: %v", err)
	}
	if r1.Phase() != PhaseII || r2.Phase() != PhaseII {
		t.Fatalf("phases = %v/%v", r1.Phase(), r2.Phase())
	}
}

func TestClusterFlushCutsPartialBlocks(t *testing.T) {
	c := newTestCluster(t, Config{Edges: 1, BatchSize: 100, FlushEvery: 20 * time.Millisecond})
	cl, err := c.NewClient("c1", EdgeID(1))
	if err != nil {
		t.Fatal(err)
	}
	// A single add in a batch of 100 commits via the flush timer.
	r, err := cl.Add([]byte("lonely"))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.WaitPhaseII(10 * time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestClusterPutGetRoundTrip(t *testing.T) {
	c := newTestCluster(t, Config{Edges: 1, BatchSize: 2, FlushEvery: 20 * time.Millisecond})
	cl, err := c.NewClient("c1", EdgeID(1))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{}
	for i := 0; i < 10; i++ {
		k, v := fmt.Sprintf("key-%d", i%4), fmt.Sprintf("val-%d", i)
		want[k] = v
		if _, err := cl.Put([]byte(k), []byte(v)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	for k, v := range want {
		got, found, _, err := cl.Get([]byte(k))
		if err != nil {
			t.Fatalf("get %s: %v", k, err)
		}
		if !found || !bytes.Equal(got, []byte(v)) {
			t.Fatalf("get %s = %q found=%v, want %q", k, got, found, v)
		}
	}
	_, found, _, err := cl.Get([]byte("absent"))
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Fatal("absent key reported found")
	}
}

func TestClusterReadReturnsCommittedBlock(t *testing.T) {
	c := newTestCluster(t, Config{Edges: 1, BatchSize: 2, NoFlush: true})
	cl, err := c.NewClient("c1", EdgeID(1))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan *Receipt, 1)
	go func() {
		r, err := cl.Add([]byte("a"))
		if err != nil {
			t.Error(err)
		}
		done <- r
	}()
	if _, err := cl.Add([]byte("b")); err != nil {
		t.Fatal(err)
	}
	r1 := <-done
	if err := r1.WaitPhaseII(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	blk, phase, err := cl.Read(r1.BID(), 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if phase != PhaseII {
		t.Fatalf("read phase = %v", phase)
	}
	if blk == nil || len(blk.Entries) != 2 {
		t.Fatalf("block = %+v", blk)
	}
}

func TestClusterDetectsTamperingEdge(t *testing.T) {
	c := newTestCluster(t, Config{
		Edges:        1,
		BatchSize:    2,
		ProofTimeout: 200 * time.Millisecond,
		EdgeFaults: map[NodeID]*Fault{
			EdgeID(1): {TamperAddVictim: "victim"},
		},
	})
	victim, err := c.NewClient("victim", EdgeID(1))
	if err != nil {
		t.Fatal(err)
	}
	other, err := c.NewClient("other", EdgeID(1))
	if err != nil {
		t.Fatal(err)
	}

	errCh := make(chan error, 1)
	go func() {
		r, err := victim.Add([]byte("precious"))
		if err != nil {
			errCh <- err
			return
		}
		errCh <- r.WaitPhaseII(15 * time.Second)
	}()
	if _, err := other.Add([]byte("bystander")); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; !errors.Is(err, ErrEdgeLied) {
		t.Fatalf("victim err = %v, want ErrEdgeLied", err)
	}
	deadline := time.After(10 * time.Second)
	for {
		if _, punished := c.Punished(EdgeID(1)); punished {
			break
		}
		select {
		case <-deadline:
			t.Fatal("edge never punished")
		case <-time.After(20 * time.Millisecond):
		}
	}
	if len(c.Verdicts()) == 0 {
		t.Fatal("no verdicts recorded")
	}
}

func TestClusterReservationAPI(t *testing.T) {
	c := newTestCluster(t, Config{Edges: 1, BatchSize: 2, FlushEvery: 20 * time.Millisecond})
	cl, err := c.NewClient("c1", EdgeID(1))
	if err != nil {
		t.Fatal(err)
	}
	start, err := cl.Reserve(1, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	r, err := cl.AddAt([]byte("reserved"), start)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.WaitPhaseII(10 * time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestClusterLatencyInjection(t *testing.T) {
	c := newTestCluster(t, Config{
		Edges:     1,
		BatchSize: 1,
		Latency: func(from, to NodeID) time.Duration {
			if from == CloudID || to == CloudID {
				return 30 * time.Millisecond
			}
			return 0
		},
	})
	cl, err := c.NewClient("c1", EdgeID(1))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	r, err := cl.Add([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	p1 := time.Since(start)
	if err := r.WaitPhaseII(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	p2 := time.Since(start)
	// Phase I avoids the cloud; Phase II pays the injected RTT.
	if p2-p1 < 40*time.Millisecond {
		t.Fatalf("phase II came too fast: p1=%v p2=%v (expected >=60ms RTT to cloud)", p1, p2)
	}
}
